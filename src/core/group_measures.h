#ifndef GROUPLINK_CORE_GROUP_MEASURES_H_
#define GROUPLINK_CORE_GROUP_MEASURES_H_

#include <cstdint>
#include <functional>

#include "core/group.h"
#include "matching/bipartite_graph.h"
#include "text/vector_store.h"

namespace grouplink {

class ExecutionContext;

/// Record-level similarity callback over record indexes of a Dataset.
/// Must be symmetric and return values in [0, 1].
using RecordSimFn = std::function<double(int32_t, int32_t)>;

/// Builds the θ-thresholded similarity bipartite graph between the records
/// of groups `g1` (left side) and `g2` (right side): an edge of weight
/// sim(r, s) for every cross pair with sim(r, s) >= theta. Requires
/// theta > 0 so that all edge weights are strictly positive.
BipartiteGraph BuildSimilarityGraph(const Dataset& dataset, int32_t g1, int32_t g2,
                                    const RecordSimFn& sim, double theta);

/// Batched counterpart of BuildSimilarityGraph for the default TF-IDF
/// similarity: each left record scores the whole right group in one
/// VectorStore::Scores call (dispatched scatter-dot kernel) instead of one
/// std::function call per cross pair. Scores is bitwise-equal to the
/// default sim and edges are added in the same (i, j) order, so the graph
/// — and every measure computed from it — is identical at every SIMD tier.
/// `scratch` is reused across calls (one per worker).
BipartiteGraph BuildSimilarityGraphBatched(const Dataset& dataset, int32_t g1,
                                           int32_t g2, const VectorStore& store,
                                           VectorStore::Scratch& scratch,
                                           double theta);

/// A group-level similarity score together with the matching statistics
/// that produced it.
struct GroupScore {
  /// Normalized score in [0, 1].
  double value = 0.0;
  /// Total weight of the underlying matching.
  double matching_weight = 0.0;
  /// Cardinality of the underlying matching.
  int32_t matching_size = 0;
};

/// Normalizes a matching (weight W, size k) between groups of sizes L and
/// R: W / (L + R − k). This is the common shape of every BM-family
/// measure; with binary weights it is exactly Jaccard.
[[nodiscard]] double NormalizeMatchingScore(double weight, int32_t size, int32_t size_left,
                              int32_t size_right);

/// The paper's group linkage measure BM: normalized maximum-weight
/// matching of `graph` (Hungarian algorithm). `size_left` / `size_right`
/// are |g1| / |g2| (the graph only has cross edges, so they cannot be
/// derived from it when records are isolated). With a non-null `ctx` a
/// stop request makes the matcher return early with a partial (valid,
/// weight <= optimal) matching, so the score can only under-report.
GroupScore BmMeasure(const BipartiteGraph& graph, int32_t size_left, int32_t size_right,
                     const ExecutionContext* ctx = nullptr);

/// Normalized greedy-matching score — the cheap heuristic companion of BM
/// (1/2-approximate matching weight; the score is *not* guaranteed to
/// lower-bound BM under ties, see GreedyLowerBound for the sound bound).
GroupScore GreedyMeasure(const BipartiteGraph& graph, int32_t size_left,
                         int32_t size_right);

/// Provable upper bound on BM, computable in O(E):
///
///   UB = S / (L + R − min(L', R'))
///
/// where S = (Σ_l best(l) + Σ_r best(r)) / 2 over best incident edge
/// weights, and L', R' are the counts of non-isolated nodes per side.
///
/// Soundness: every matched edge (l, r) of the max-weight matching M* has
/// weight ≤ (best(l) + best(r)) / 2, and matching edges are node-disjoint,
/// so W* ≤ S. Also |M*| ≤ min(L', R'), so BM's denominator is ≥ UB's.
/// Hence BM = W*/(L+R−|M*|) ≤ S/(L+R−min(L',R')) = UB. Moreover UB ≤ 1
/// because S ≤ (L'+R')/2 and L+R−min(L',R') ≥ (L'+R')/2 for weights ≤ 1.
/// Property-tested against exact BM in tests/core_measures_test.cc.
[[nodiscard]] double UpperBoundMeasure(const BipartiteGraph& graph, int32_t size_left,
                         int32_t size_right);

/// Provable lower bound on BM from the greedy matching (weight W_g,
/// size k_g):
///
///   LB = W_g / (L + R − ceil(k_g / 2))
///
/// Soundness: W* ≥ W_g. Every maximum-weight matching under strictly
/// positive weights is maximal, any maximal matching has at least ν/2
/// edges (ν = maximum cardinality), and k_g ≤ ν, so |M*| ≥ ceil(k_g / 2)
/// and BM's denominator is ≤ LB's. Hence BM ≥ LB.
[[nodiscard]] double GreedyLowerBound(const BipartiteGraph& graph, int32_t size_left,
                        int32_t size_right);

/// Binary-similarity Jaccard generalization: edges count 1 each, the
/// score is the normalized *maximum-cardinality* matching (Hopcroft-Karp).
/// With exact-duplicate edges this is the classical Jaccard coefficient.
GroupScore BinaryJaccardMeasure(const BipartiteGraph& graph, int32_t size_left,
                                int32_t size_right);

/// Baseline: the single best record-pair similarity between the groups
/// (max edge weight; 0 when the thresholded graph has no edge).
[[nodiscard]] double SingleBestMeasure(const BipartiteGraph& graph);

/// Asymmetric containment: maximum-weight matching normalized by the
/// *smaller* group, W* / min(L, R) ∈ [0, 1]. Scores 1 when one group's
/// records all match into the other — detects subgroup relationships
/// (e.g. an early-career author group inside a later, larger one) that
/// BM's union-style denominator deliberately penalizes. An extension
/// beyond the paper's symmetric setting.
[[nodiscard]] double ContainmentMeasure(const BipartiteGraph& graph, int32_t size_left,
                          int32_t size_right);

/// The exact maximizer of the normalized score over all matchings
/// (BM* variant; tie-proof, >= BM). Computed by the cardinality-profile
/// algorithm in matching/ssp_matching.h.
[[nodiscard]] double BmStarMeasure(const BipartiteGraph& graph, int32_t size_left,
                     int32_t size_right);

/// The measures selectable end-to-end (benchmarks compare them head on).
enum class GroupMeasureKind {
  kBm,             // Paper's measure: normalized max-weight matching.
  kBmStar,         // Exact max normalized score over all matchings.
  kGreedy,         // Normalized greedy matching score.
  kUpperBound,     // UB used *as* a measure (cheap, over-links).
  kBinaryJaccard,  // Normalized max-cardinality matching.
  kSingleBest,     // Best record pair baseline.
  kContainment,    // Matching normalized by the smaller group.
};

const char* GroupMeasureKindName(GroupMeasureKind kind);

/// Evaluates `kind` on a prebuilt similarity graph.
[[nodiscard]] double EvaluateGroupMeasure(GroupMeasureKind kind, const BipartiteGraph& graph,
                            int32_t size_left, int32_t size_right);

}  // namespace grouplink

#endif  // GROUPLINK_CORE_GROUP_MEASURES_H_
