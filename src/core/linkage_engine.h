#ifndef GROUPLINK_CORE_LINKAGE_ENGINE_H_
#define GROUPLINK_CORE_LINKAGE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "core/edge_join.h"
#include "core/filter_refine.h"
#include "core/group.h"
#include "core/group_measures.h"
#include "core/run_report.h"
#include "core/scored_pair.h"
#include "index/blocking.h"
#include "index/candidates.h"
#include "text/tfidf.h"
#include "text/vector_store.h"
#include "text/vocabulary.h"

namespace grouplink {

/// How candidate group pairs are generated before scoring.
enum class CandidateMethod {
  kAllPairs,       // Every group pair (quadratic; baseline).
  kRecordJoin,     // Prefix-filter Jaccard join over record token sets.
  kBlocking,       // Blocker over record texts (see LinkageConfig::blocking).
  kLabelBlocking,  // Blocker over group labels (names / addresses).
  kSortedNeighborhood,  // Sliding window over sort-ordered group labels.
  kMinHash,        // MinHash/LSH join over record token sets.
};

const char* CandidateMethodName(CandidateMethod method);

/// How record texts are turned into the token/vector representation that
/// the default similarity, the joins, and the TF-IDF weighting all use.
enum class RecordRepresentation {
  kWordTokens,      // Word tokens — the default; fast, readable.
  kCharacterQGrams, // Padded character 3-grams — heavier but robust to
                    // typos that mangle whole words (ablation E16).
};

const char* RecordRepresentationName(RecordRepresentation representation);

/// End-to-end configuration of a group linkage run.
struct LinkageConfig {
  /// Record-level edge threshold θ. Calibrated for the default TF-IDF
  /// cosine record similarity: dirty copies of one record usually score
  /// 0.5-0.9, unrelated records below 0.3.
  double theta = 0.4;
  /// Group-level link threshold Θ.
  double group_threshold = 0.25;
  /// Group measure used for link decisions.
  GroupMeasureKind measure = GroupMeasureKind::kBm;
  /// Text representation behind the default record similarity and joins.
  RecordRepresentation representation = RecordRepresentation::kWordTokens;
  /// Edge threshold used *only* by the kBinaryJaccard baseline: records
  /// count as "the same element" when sim >= binary_cutoff. The classical
  /// Jaccard baseline demands near-identical records, which is exactly why
  /// it collapses under noise while BM degrades gracefully.
  double binary_cutoff = 0.9;
  /// Candidate generation strategy.
  CandidateMethod candidates = CandidateMethod::kRecordJoin;
  /// Record-token Jaccard threshold of the kRecordJoin prefix filter.
  /// Keep well below θ: the TF-IDF cosine used for edges is usually
  /// higher than plain token Jaccard, so a loose join keeps recall.
  double candidate_jaccard = 0.2;
  /// Blocking scheme of kBlocking.
  BlockingScheme blocking = BlockingScheme::kToken;
  /// Window size of kSortedNeighborhood.
  int32_t neighborhood_window = 10;
  /// LSH shape of kMinHash: bands x rows signature banding. Defaults give
  /// the S-curve midpoint near Jaccard 0.25 (1/16)^(1/2).
  int32_t minhash_bands = 16;
  int32_t minhash_rows = 2;
  /// Use the filter-and-refine pipeline when measure == kBm.
  bool use_filter_refine = true;
  /// Individual bound switches (ablations; both on by default).
  bool use_upper_bound_filter = true;
  bool use_lower_bound_accept = true;
  /// Use the global edge-join strategy instead of per-group-pair graph
  /// construction (kBm only). Scales far better: record similarities are
  /// evaluated once per joined record pair instead of once per record
  /// pair per candidate group pair. See core/edge_join.h for the
  /// join-threshold approximation caveat.
  bool use_edge_join = false;
  /// Token-Jaccard threshold of the edge join's prefix filter.
  double join_jaccard = 0.3;
  /// Worker threads (1 = serial). Honored by *both* strategies and by
  /// Prepare: the per-pair pipeline scores candidate group pairs in
  /// parallel, the edge-join strategy shards its streaming join, verifies
  /// candidates inline per worker, and scores buckets in parallel, and
  /// Prepare tokenizes + TF-IDF-vectorizes records in parallel. Results
  /// are bit-identical to the serial run in every case.
  int32_t num_threads = 1;

  /// Resilience controls (all off by default; see DESIGN.md §8).
  /// Wall-clock deadline of one Run() call, in milliseconds (<= 0 = no
  /// deadline). The clock starts when Run is entered — Prepare is not
  /// covered. On expiry the run stops within one task quantum and returns
  /// a valid partial result whose links are a subset of the unconstrained
  /// run's, with report().degraded == true.
  double deadline_ms = 0.0;
  /// Cap on candidate group pairs (per-pair strategy) or edge buckets
  /// (edge join) scored exactly. Excess pairs are shed deterministically
  /// — by upper-bound score for BM, by list prefix for baseline measures.
  /// 0 = unlimited.
  int64_t max_candidate_pairs = 0;
  /// Per-pair matcher budget: pairs whose cost |g1|*|g2| exceeds this are
  /// decided from the sound bounds instead of running the Hungarian
  /// matcher. 0 = unlimited.
  int64_t max_matcher_cost = 0;
  /// Cooperative cancellation: Cancel() from any thread makes Run stop
  /// within one task quantum and return a valid partial result.
  CancellationToken cancellation;

  /// Checks every field for consistency: thresholds finite and in range,
  /// positive window/band/row/thread counts, non-negative deadline and
  /// budgets, and join_jaccard <= theta when the edge join is enabled (a
  /// join threshold above θ would silently drop true edges). Prepare()
  /// calls this; call it directly to fail fast when configs come from
  /// user input.
  Status Validate() const;
};

/// Output of LinkageEngine::Run.
class LinkageResult {
 public:
  /// Linked group pairs (i < j), the paper's primary output.
  std::vector<std::pair<int32_t, int32_t>> linked_pairs;
  /// Transitive closure of linked_pairs: one entity label per group.
  std::vector<size_t> group_cluster;
  /// Number of entity clusters.
  size_t num_clusters = 0;

  /// All run statistics — per-stage wall times and counters — behind one
  /// struct with one ToJson(). See core/run_report.h. (The pre-report
  /// accessor sprawl — candidate_stats / score_stats / edge_join_stats /
  /// seconds_* — is gone; read report().StageCounter(stage, name) and
  /// report().StageSeconds(stage) directly.)
  const RunReport& report() const { return report_; }
  RunReport& mutable_report() { return report_; }

 private:
  RunReport report_;
};

/// Runs group linkage end to end:
///   1. Prepare: tokenize record texts, build the corpus Vocabulary,
///      vectorize every record with TF-IDF.
///   2. Candidates: generate candidate group pairs (blocking / join).
///   3. Score: decide each candidate with the configured measure — for BM
///      through the filter-and-refine pipeline.
///   4. Cluster: union-find over linked pairs -> entity labels.
///
/// With LinkageConfig::num_threads > 1 the engine owns a ThreadPool that
/// Prepare and Run share; both evaluation strategies (per-pair
/// filter-refine and the edge join) honor it and produce output identical
/// to the serial run.
///
/// The default record similarity is TF-IDF cosine over word tokens of
/// Record::text. Pass a custom RecordSimFn to Run to override (e.g. the
/// field-weighted RecordSimilarity from text/record_similarity.h).
///
/// Example:
///   GL_ASSIGN_OR_RETURN(LinkageEngine engine,
///                       LinkageEngine::Create(&dataset, config));
///   LinkageResult result = engine.Run();
class LinkageEngine {
 public:
  /// Single-phase init: validates `config` and the dataset, precomputes
  /// token sets and TF-IDF vectors, and returns an engine that is ready
  /// to Run. `dataset` must outlive the engine and is not modified. This
  /// is the only way to obtain a prepared engine in new code.
  [[nodiscard]] static Result<LinkageEngine> Create(const Dataset* dataset,
                                                    const LinkageConfig& config);

  /// Deprecated two-phase construction (constructor + Prepare). The shim
  /// survives one release for out-of-tree callers; everything in-tree
  /// goes through Create. `dataset` must outlive the engine.
  LinkageEngine(const Dataset* dataset, const LinkageConfig& config);

  /// Deprecated: second phase of the two-phase shim. Create() already
  /// prepared the engine; calling Prepare on a Create()-built engine is
  /// harmless (idempotent success).
  Status Prepare();

  /// Runs candidate generation, scoring, and clustering. Scoring goes
  /// through the batched SIMD kernels (the engine's VectorStore), which
  /// are bitwise-equal to DefaultRecordSimilarity per pair — same links
  /// as the per-call path, at every dispatch tier and thread count.
  LinkageResult Run();

  /// As Run, with a caller-supplied record similarity (scored per pair —
  /// the batched kernels only apply to the default similarity).
  LinkageResult Run(const RecordSimFn& sim);

  /// Default record similarity: TF-IDF cosine of the two records' texts
  /// (the vectors are unit-length, so this is their dot product).
  /// Valid only after Prepare().
  double DefaultRecordSimilarity(int32_t a, int32_t b) const;

  /// Scores every candidate group pair with `measure` *without*
  /// thresholding at the group level (θ still gates edges; pairs whose
  /// similarity graph is empty are omitted — their score is 0). Feed the
  /// result to eval/sweep.h to evaluate many Θ settings from one scoring
  /// pass. Uses the configured candidate method and the default record
  /// similarity.
  std::vector<ScoredPair> ScoreCandidates(GroupMeasureKind measure);

  const LinkageConfig& config() const { return config_; }

 private:
  /// Shared implementation of both Run overloads. `store` is the engine's
  /// VectorStore for the default similarity (batched scoring), null for a
  /// caller-supplied sim (per-pair scoring through `sim`).
  LinkageResult RunInternal(const RecordSimFn& sim, const VectorStore* store);
  std::vector<std::pair<int32_t, int32_t>> GenerateCandidates(
      GroupCandidateStats* stats);
  void FinishClustering(LinkageResult& result) const;
  void FillRunFacts(RunReport& report) const;
  /// The engine's worker pool (null when num_threads <= 1); created once,
  /// shared by Prepare and Run.
  ThreadPool* pool();

  const Dataset* dataset_;
  LinkageConfig config_;
  bool prepared_ = false;
  double prepare_seconds_ = 0.0;
  std::unique_ptr<ThreadPool> pool_;

  Vocabulary vocabulary_;
  std::vector<std::vector<int32_t>> record_token_ids_;  // Sorted-unique per record.
  std::vector<SparseVector> record_vectors_;
  /// Flat SoA mirror of record_vectors_ feeding the batched kernels.
  VectorStore vector_store_;
  std::vector<int32_t> record_group_;
};

/// Convenience wrapper: prepare + run with defaults.
[[nodiscard]] Result<LinkageResult> RunGroupLinkage(const Dataset& dataset,
                                      const LinkageConfig& config);

}  // namespace grouplink

#endif  // GROUPLINK_CORE_LINKAGE_ENGINE_H_
