#ifndef GROUPLINK_CORE_SCORED_PAIR_H_
#define GROUPLINK_CORE_SCORED_PAIR_H_

#include <cstdint>

namespace grouplink {

/// One candidate group pair with its group-measure score — the
/// score-once / threshold-many currency between the engine
/// (LinkageEngine::ScoreCandidates) and the sweep helpers (eval/sweep.h).
struct ScoredPair {
  int32_t g1 = 0;
  int32_t g2 = 0;
  double score = 0.0;
};

}  // namespace grouplink

#endif  // GROUPLINK_CORE_SCORED_PAIR_H_
