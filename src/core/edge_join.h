#ifndef GROUPLINK_CORE_EDGE_JOIN_H_
#define GROUPLINK_CORE_EDGE_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/thread_pool.h"
#include "core/group_measures.h"

namespace grouplink {

class VectorStore;

/// Configuration of the edge-join evaluation strategy.
struct EdgeJoinConfig {
  /// Record-level edge threshold θ (> 0).
  double theta = 0.4;
  /// Group-level link threshold Θ.
  double group_threshold = 0.25;
  /// Token-Jaccard threshold of the record-pair prefix-filter join that
  /// generates edge *candidates*. Lower = more candidates verified = more
  /// recall of true edges; 0.1-0.2 is near-lossless in practice.
  double join_jaccard = 0.3;
  /// Bound switches (as in FilterRefineConfig).
  bool use_upper_bound_filter = true;
  bool use_lower_bound_accept = true;
  /// Worker threads (1 = serial). With more than one thread the join
  /// shards probe documents across a pool, workers verify candidates
  /// inline into per-shard buffers, and buckets are scored in parallel.
  /// Output is bit-identical for every setting (see EdgeJoinLink).
  /// Ignored when a non-null pool is passed to EdgeJoinLink.
  int32_t num_threads = 1;
};

/// Counters of one EdgeJoinLink run.
struct EdgeJoinStats {
  /// Record pairs produced by the prefix filter (candidates to verify).
  size_t record_candidates = 0;
  /// Verified edges (sim >= θ) across group boundaries.
  size_t edges = 0;
  /// Group pairs with at least one edge (all others trivially score 0).
  size_t group_pairs = 0;
  size_t pruned_by_upper_bound = 0;
  size_t accepted_by_lower_bound = 0;
  size_t refined = 0;
  size_t linked = 0;
  /// Probe documents the join shed after a deadline/cancellation trip.
  size_t probes_skipped = 0;
  /// Buckets shed by the candidate cap (budget or injected oversize),
  /// decided by UB order, deterministically.
  size_t shed_candidates = 0;
  /// Buckets decided by the bounds-only fallback (matcher budget trip).
  size_t degraded_refines = 0;
  /// Buckets never scored: the deadline or cancellation tripped first.
  size_t skipped = 0;
  /// Batched-verify flushes (store path only; 0 for a custom sim).
  size_t verify_batches = 0;
  /// Per-stage wall times. seconds_join is the wall time of the whole
  /// join+verify stage. With a VectorStore (the default-similarity path)
  /// seconds_verify is the time the shard workers spent inside batched
  /// scoring, summed across workers — CPU-seconds, so it can exceed the
  /// stage wall time on multi-thread runs. With a custom sim the
  /// verification is folded into seconds_join and seconds_verify stays 0.
  /// seconds_bucket covers the deterministic shard merge + bucketing.
  double seconds_join = 0.0;
  double seconds_verify = 0.0;
  double seconds_bucket = 0.0;
  double seconds_score = 0.0;
  /// Worker threads the run actually used (pool size, or 1).
  int32_t threads_used = 1;
};

/// The scalable evaluation strategy of the paper, built on a global
/// set-similarity join instead of per-group-pair similarity matrices:
///
///   1. Join: a prefix-filter self-join over record token sets yields
///      candidate record pairs; each is verified once with `sim`, keeping
///      pairs with sim >= θ as weighted edges.
///   2. Bucket: edges are grouped by their (group, group) pair. Group
///      pairs with no edge have BM = 0 and are never touched — the whole
///      quadratic group-pair space is skipped.
///   3. Score: per bucket, the bipartite graph is assembled from the edge
///      list, the UB/LB bounds decide most pairs, and the Hungarian
///      algorithm refines the residue.
///
/// Total record-similarity evaluations: O(join candidates), instead of
/// O(Σ |g1|·|g2|) over candidate group pairs for the per-pair pipeline.
///
/// Parallel execution: with `pool` non-null (or config.num_threads > 1,
/// in which case an internal pool is created), stage 1+2 shard probe
/// documents into contiguous ranges, each worker verifying candidates
/// inline against the (thread-safe) `sim` into a per-shard edge buffer;
/// buffers are merged in shard order — which reproduces the serial
/// emission order exactly — before bucketing, and stage 3 scores buckets
/// with ParallelFor into preallocated decision slots. Every output
/// (linked pairs, edges, buckets, stats counters) is therefore
/// bit-identical across thread counts and scheduling orders; the
/// invariant is covered by unit tests and benchmark E5.
///
/// Caveat (documented approximation): an edge whose token Jaccard falls
/// below `join_jaccard` is invisible to the join even if sim >= θ, so the
/// result can differ from exhaustive evaluation when the join threshold
/// is set aggressively. Benchmark E5 verifies the agreement empirically.
///
/// `record_tokens` holds each record's sorted-unique token ids over a
/// dense id space of size `num_tokens`; `record_group` maps records to
/// group indexes.
/// With a non-null `ctx`, the join/score stages poll for deadline or
/// cancellation and degrade instead of running unbounded: shed probes,
/// a UB-ordered bucket cap, and a bounds-only matcher fallback — every
/// degraded decision only removes links, so the output is a subset of
/// the unconstrained run's (see DESIGN.md §8).
///
/// With a non-null `store` (the engine passes its VectorStore when `sim`
/// is the default TF-IDF similarity), candidate verification runs in
/// batches through VectorStore::Scores instead of one `sim` call per
/// pair: each shard accumulates the candidates of the current probe into
/// a flat SoA buffer and flushes it through the dispatched scatter-dot
/// kernel. Scores is bitwise-equal to the default sim for every pair at
/// every SIMD tier, and edges are appended in candidate order, so links,
/// edges, and counters are identical to the per-pair path — only faster.
/// Callers overriding `sim` must pass store = nullptr.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> EdgeJoinLink(
    const Dataset& dataset, const std::vector<std::vector<int32_t>>& record_tokens,
    int32_t num_tokens, const std::vector<int32_t>& record_group,
    const RecordSimFn& sim, const EdgeJoinConfig& config,
    EdgeJoinStats* stats = nullptr, ThreadPool* pool = nullptr,
    ExecutionContext* ctx = nullptr, const VectorStore* store = nullptr);

}  // namespace grouplink

#endif  // GROUPLINK_CORE_EDGE_JOIN_H_
