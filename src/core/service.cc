#include "core/service.h"

#include <chrono>
#include <cmath>
#include <string_view>

#include "common/epoch_cell.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/mutex.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "common/trace.h"
#include "storage/snapshot_store.h"

namespace grouplink {
namespace {

struct ServiceMetrics {
  Counter& queries;
  Counter& query_links;
  Counter& query_candidates;
  Counter& query_degraded;
  Counter& epochs_published;
  Counter& refreshes_sync;
  Counter& refreshes_async;
  Counter& refresh_failures;
  Counter& persist_failures;
  Counter& replayed_ops;
  Gauge& published_epoch;
  Histogram& query_seconds;

  static ServiceMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static ServiceMetrics metrics{
        registry.CounterRef("service.queries"),
        registry.CounterRef("service.query_links"),
        registry.CounterRef("service.query_candidates"),
        registry.CounterRef("service.query_degraded"),
        registry.CounterRef("service.epochs_published"),
        registry.CounterRef("service.refreshes_sync"),
        registry.CounterRef("service.refreshes_async"),
        registry.CounterRef("service.refresh_failures"),
        registry.CounterRef("service.persist_failures"),
        registry.CounterRef("service.replayed_ops"),
        registry.GaugeRef("service.published_epoch"),
        registry.HistogramRef("service.query_seconds")};
    return metrics;
  }
};

}  // namespace

Status ServiceConfig::Validate() const {
  GL_RETURN_IF_ERROR(ValidateStreamingConfigs(engine, streaming));
  if (!std::isfinite(default_query_deadline_ms) ||
      default_query_deadline_ms < 0.0) {
    return Status::InvalidArgument(
        "ServiceConfig: default_query_deadline_ms must be finite and >= 0");
  }
  if (default_query_max_candidates < 0) {
    return Status::InvalidArgument(
        "ServiceConfig: default_query_max_candidates must be >= 0");
  }
  if (default_query_max_matcher_cost < 0) {
    return Status::InvalidArgument(
        "ServiceConfig: default_query_max_matcher_cost must be >= 0");
  }
  if (persist_on_refresh && persist_path.empty()) {
    return Status::InvalidArgument(
        "ServiceConfig: persist_on_refresh requires persist_path");
  }
  if (!persist_path.empty() &&
      (persist_page_bytes < storage::kMinPageBytes ||
       persist_page_bytes > storage::kMaxPageBytes)) {
    return Status::InvalidArgument(
        "ServiceConfig: persist_page_bytes must lie in [" +
        std::to_string(storage::kMinPageBytes) + ", " +
        std::to_string(storage::kMaxPageBytes) + "]");
  }
  return Status::Ok();
}

/// All service state. Lock discipline: `mu` guards the writer linker, the
/// ops log, and the in-flight flag; `cell` is its own synchronization
/// (atomic publication); `refresh_pool` is internally synchronized. The
/// pool is declared *last* so ~Impl destroys it *first* — draining any
/// background refresh (which locks `mu` and touches every other member)
/// before the state it reads dies.
struct LinkageService::Impl {
  /// One logged writer mutation, replayed verbatim onto the refreshed
  /// clone. Replay preserves call order, and group/record ids are a
  /// deterministic function of call order alone, so the clone assigns the
  /// same ids the live writer handed out while the refresh was running.
  struct Op {
    enum class Kind { kAdd, kRemove, kMerge };
    Kind kind;
    std::vector<GroupArrival> batch;  // kAdd
    int32_t a = 0;                    // kRemove: group; kMerge: into.
    int32_t b = 0;                    // kMerge: from.
  };

  using Clock = std::chrono::steady_clock;

  ServiceConfig config;
  mutable Mutex mu;
  std::shared_ptr<IncrementalLinker> linker GL_GUARDED_BY(mu);
  bool in_flight GL_GUARDED_BY(mu) = false;
  std::vector<Op> ops_log GL_GUARDED_BY(mu);
  /// Refresh-supervision surface, all guarded by mu: outcome of the last
  /// async build, the failure streak, the poison culprit of the last
  /// failure, and the timestamps the watchdog samples for epoch age and
  /// stall detection.
  Status last_refresh GL_GUARDED_BY(mu) = Status::Ok();
  int64_t consecutive_refresh_failures GL_GUARDED_BY(mu) = 0;
  std::string last_refresh_culprit GL_GUARDED_BY(mu);
  Clock::time_point last_publish_at GL_GUARDED_BY(mu) = Clock::now();
  Clock::time_point refresh_started_at GL_GUARDED_BY(mu){};
  EpochCell<CorpusSnapshot> cell;
  /// Persistence state. persist_mu is independent of mu (persists run
  /// with mu released — disk never blocks ingest or queries) and
  /// serializes concurrent persists (manual + background) so two writers
  /// never race on one tmp file.
  mutable Mutex persist_mu GL_ACQUIRED_AFTER(mu);
  Status last_persist GL_GUARDED_BY(persist_mu) = Status::Ok();
  std::unique_ptr<ThreadPool> refresh_pool;   // Keep last; see above.

  /// True when the refresh policy wants a new epoch, from the writer's
  /// public accumulation accessors (the writer's own inline trigger is
  /// disabled in async mode — the policy lives here instead).
  bool PolicyWantsRefresh() const GL_REQUIRES(mu) {
    const StreamingConfig& policy = config.streaming;
    if (policy.refresh_every_n_groups > 0 &&
        linker->groups_since_refresh() >= policy.refresh_every_n_groups) {
      return true;
    }
    if (policy.refresh_on_oov_ratio > 0.0 &&
        linker->EpochOovRatio() > policy.refresh_on_oov_ratio) {
      return true;
    }
    return false;
  }

  void PublishLocked(const IncrementalLinker& source) GL_REQUIRES(mu) {
    PublishSnapshotLocked(CorpusSnapshot::Capture(source));
  }

  void PublishSnapshotLocked(std::shared_ptr<const CorpusSnapshot> snapshot)
      GL_REQUIRES(mu) {
    auto& metrics = ServiceMetrics::Get();
    metrics.published_epoch.Set(static_cast<double>(snapshot->epoch()));
    metrics.epochs_published.Increment();
    last_publish_at = Clock::now();
    cell.Store(std::move(snapshot));
  }

  /// A refresh (any mode) completed and its epoch is published: clear the
  /// failure streak the watchdog keys off.
  void NoteRefreshSuccessLocked() GL_REQUIRES(mu) {
    last_refresh = Status::Ok();
    consecutive_refresh_failures = 0;
    last_refresh_culprit.clear();
  }

  /// The background build died before publishing: discard everything it
  /// owned, keep the previous epoch serving, and surface the failure for
  /// the watchdog. The backlog ops were already applied to the live
  /// writer (the log exists only to replay them onto the clone), so
  /// clearing it loses nothing.
  void FailRefreshJob(std::string culprit) GL_EXCLUDES(mu) {
    Status failure = Status::Unavailable(
        culprit.empty()
            ? "async refresh build failed (injected)"
            : "async refresh build died absorbing poison batch '" + culprit + "'");
    GL_LOG(Warning) << "refresh failed: " << failure.message();
    ServiceMetrics::Get().refresh_failures.Increment();
    MutexLock lock(&mu);
    ops_log.clear();
    in_flight = false;
    last_refresh = std::move(failure);
    ++consecutive_refresh_failures;
    last_refresh_culprit = std::move(culprit);
  }

  /// The poison label the injected kPoisonBatch fault would blame for
  /// this corpus, or "" when the corpus is clean (newest group first —
  /// the batch the build was absorbing when it died).
  static std::string FindPoisonLabel(const IncrementalLinker& linker) {
    const std::string_view marker = faults::kPoisonLabelMarker;
    for (int32_t g = linker.num_groups() - 1; g >= 0; --g) {
      if (!linker.IsAlive(g)) continue;
      const std::string& label = linker.group_label(g);
      if (std::string_view(label).substr(0, marker.size()) == marker) {
        return label;
      }
    }
    return std::string();
  }

  /// Writes `snapshot` to the configured store path. Never called with
  /// `mu` held. Records the outcome in last_persist and returns it.
  Status PersistPublished(const std::shared_ptr<const CorpusSnapshot>& snapshot)
      GL_EXCLUDES(mu) {
    storage::StorageOptions options;
    options.page_bytes = config.persist_page_bytes;
    MutexLock lock(&persist_mu);
    // gl-lint: allow(lock-blocking-call) persist_mu exists to serialize disk writers (manual vs background persist); it guards no query or ingest state, so holding it across the store write is the point
    const Status status = storage::SnapshotStore::Persist(
        *snapshot, config.persist_path, options);
    if (!status.ok()) {
      GL_LOG(Warning) << "persist of epoch " << snapshot->epoch()
                      << " failed: " << status.message();
      // A failing store must be observable, not just stored: the counter
      // is what dashboards and the health surface alarm on.
      ServiceMetrics::Get().persist_failures.Increment();
    }
    last_persist = status;
    return status;
  }

  /// Requires no refresh in flight. Clones the writer at the current cut
  /// and hands the clone to the background worker; mutations from here on
  /// are logged for replay.
  void StartRefreshLocked() GL_REQUIRES(mu) {
    GL_CHECK(!in_flight);
    in_flight = true;
    refresh_started_at = Clock::now();
    ops_log.clear();
    // shared_ptr because ThreadPool tasks are copyable std::functions;
    // the clone has exactly one logical owner (the background job).
    std::shared_ptr<IncrementalLinker> clone = linker->Clone();
    refresh_pool->Submit([this, clone] { RunRefreshJob(clone); });
    ServiceMetrics::Get().refreshes_async.Increment();
  }

  /// Background body: refresh the clone unlocked (the expensive part —
  /// readers and writers run unimpeded), publish the pure refresh-point
  /// epoch, then replay the backlog with a catch-up loop and swap the
  /// clone in as the new writer.
  ///
  /// The writer lock is only ever held for O(1)-ish work here: the clone
  /// is private to this job until the swap, so both the O(corpus)
  /// snapshot copy and the per-op re-scoring of the replay run unlocked —
  /// an arrival's worst-case wait on `mu` is one backlog handoff, not a
  /// whole replay (that is the E18 stall number).
  void RunRefreshJob(const std::shared_ptr<IncrementalLinker>& clone)
      GL_EXCLUDES(mu) {
    GL_TRACE_SPAN("service.async_refresh");
    // Injected stall: the build sleeps before doing any work, long enough
    // for a watchdog stall detector (or a test) to observe it in flight.
    (void)FaultInjector::Default().FireWithDelay(faults::kStallRefresh);
    // Injected build death, evaluated before the expensive work the way a
    // crash would pre-empt it: a poisoned corpus (kPoisonBatch names the
    // culprit batch label) or a generic failure (kRefreshFailure). Either
    // way nothing is published and the previous epoch keeps serving.
    {
      auto& injector = FaultInjector::Default();
      std::string culprit;
      if (injector.armed(faults::kPoisonBatch)) {
        culprit = FindPoisonLabel(*clone);
        if (!culprit.empty() && !injector.ShouldFire(faults::kPoisonBatch)) {
          culprit.clear();
        }
      }
      if (!culprit.empty() || injector.ShouldFire(faults::kRefreshFailure)) {
        FailRefreshJob(std::move(culprit));
        return;
      }
    }
    clone->Refresh();

    // Publish *before* replay: the epoch snapshot is exactly the
    // refreshed cut-point corpus, which is what makes
    // snapshot-at-epoch-k == batch-run-at-epoch-k provable.
    {
      std::shared_ptr<const CorpusSnapshot> snapshot =
          CorpusSnapshot::Capture(*clone);
      {
        MutexLock lock(&mu);
        PublishSnapshotLocked(snapshot);
        NoteRefreshSuccessLocked();
      }
      // Durability rides the background thread too, after the publish
      // and with no lock held: a slow disk delays nothing but the next
      // persist.
      if (config.persist_on_refresh) (void)PersistPublished(snapshot);
    }

    // Catch-up replay: repeatedly steal the whole backlog under the lock,
    // apply it to the private clone unlocked, and only swap when a steal
    // finds the log empty — the emptiness check and the swap are atomic,
    // so no mutation can fall between the old writer and the new one.
    for (;;) {
      std::vector<Op> batch;
      {
        MutexLock lock(&mu);
        if (ops_log.empty()) {
          linker = clone;
          in_flight = false;
          // The replayed backlog may already satisfy the policy again
          // (heavy ingest during a slow build); chain the next epoch so
          // the service converges instead of waiting for the next
          // mutation.
          if (PolicyWantsRefresh()) StartRefreshLocked();
          return;
        }
        batch.swap(ops_log);
      }
      ServiceMetrics::Get().replayed_ops.Increment(batch.size());
      for (const Op& op : batch) {
        switch (op.kind) {
          case Op::Kind::kAdd:
            (void)clone->AddGroups(op.batch);  // Results went to the caller already.
            break;
          case Op::Kind::kRemove:
            clone->RemoveGroup(op.a);
            break;
          case Op::Kind::kMerge:
            (void)clone->MergeGroups(op.a, op.b);  // Same: replay for state only.
            break;
        }
      }
    }
  }

  /// Post-mutation bookkeeping, mu held: log the op when a refresh is in
  /// flight, and fire the policy. `inline_refreshed` reports that the
  /// writer already refreshed inside the mutating call (sync mode), which
  /// only needs the new epoch published. Returns the snapshot the caller
  /// must persist *after releasing mu* (null when none) — the disk write
  /// never runs under the writer lock.
  [[nodiscard]] std::shared_ptr<const CorpusSnapshot> AfterMutationLocked(
      Op op, bool inline_refreshed) GL_REQUIRES(mu) {
    if (in_flight) ops_log.push_back(std::move(op));
    if (inline_refreshed) {
      PublishLocked(*linker);
      NoteRefreshSuccessLocked();
      ServiceMetrics::Get().refreshes_sync.Increment();
      return config.persist_on_refresh ? cell.Load() : nullptr;
    }
    if (config.async_refresh && !in_flight && PolicyWantsRefresh()) {
      StartRefreshLocked();
    }
    return nullptr;
  }
};

LinkageService::LinkageService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
LinkageService::~LinkageService() = default;
LinkageService::LinkageService(LinkageService&&) noexcept = default;
LinkageService& LinkageService::operator=(LinkageService&&) noexcept = default;

Result<LinkageService> LinkageService::Create(const Dataset& seed,
                                              const ServiceConfig& config) {
  GL_RETURN_IF_ERROR(config.Validate());
  auto impl = std::make_unique<Impl>();
  impl->config = config;
  // Async mode owns the refresh policy itself (the writer's inline
  // trigger would stop the world); sync mode delegates to the writer.
  const StreamingConfig writer_streaming =
      config.async_refresh ? StreamingConfig{} : config.streaming;
  GL_ASSIGN_OR_RETURN(
      IncrementalLinker linker,
      IncrementalLinker::Create(seed, config.engine, writer_streaming));
  impl->linker = std::make_shared<IncrementalLinker>(std::move(linker));
  {
    MutexLock lock(&impl->mu);
    impl->PublishLocked(*impl->linker);
  }
  impl->refresh_pool = std::make_unique<ThreadPool>(1);
  // Seed epoch durability, with no lock held (nothing else can touch the
  // service yet anyway).
  if (config.persist_on_refresh) {
    (void)impl->PersistPublished(impl->cell.Load());
  }
  return LinkageService(std::move(impl));
}

Result<LinkageService> LinkageService::Restore(const ServiceConfig& config) {
  GL_RETURN_IF_ERROR(config.Validate());
  if (config.persist_path.empty()) {
    return Status::InvalidArgument("Restore requires persist_path");
  }
  GL_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusSnapshot> snapshot,
                      storage::SnapshotStore::Load(config.persist_path));
  auto impl = std::make_unique<Impl>();
  impl->config = config;
  // The persisted engine config supersedes the caller's: the store knows
  // what the corpus was linked with, and mixing configs would break the
  // bit-identity contract of the warm restart.
  impl->config.engine = snapshot->engine_config();
  const StreamingConfig writer_streaming =
      config.async_refresh ? StreamingConfig{} : config.streaming;
  GL_ASSIGN_OR_RETURN(std::unique_ptr<IncrementalLinker> linker,
                      IncrementalLinker::FromSnapshot(*snapshot, writer_streaming));
  impl->linker = std::move(linker);
  {
    MutexLock lock(&impl->mu);
    // The recovered snapshot is published as-is — same epoch number, same
    // link set — no re-capture round trip.
    impl->PublishSnapshotLocked(std::move(snapshot));
  }
  impl->refresh_pool = std::make_unique<ThreadPool>(1);
  return LinkageService(std::move(impl));
}

std::shared_ptr<const CorpusSnapshot> LinkageService::snapshot() const {
  return impl_->cell.Load();
}

LinkageService::QueryResult LinkageService::LinkQuery(
    const GroupArrival& group, const QueryOptions& options) const {
  auto& metrics = ServiceMetrics::Get();
  WallTimer timer;
  // One acquire-load; the rest of the query runs on the immutable epoch.
  const std::shared_ptr<const CorpusSnapshot> snapshot = impl_->cell.Load();

  QueryOptions effective = options;
  const ServiceConfig& config = impl_->config;
  if (effective.deadline_ms <= 0.0) {
    effective.deadline_ms = config.default_query_deadline_ms;
  }
  if (effective.max_candidate_pairs == 0) {
    effective.max_candidate_pairs = config.default_query_max_candidates;
  }
  if (effective.max_matcher_cost == 0) {
    effective.max_matcher_cost = config.default_query_max_matcher_cost;
  }

  QueryResult result = snapshot->LinkQuery(group, effective);

  metrics.queries.Increment();
  metrics.query_links.Increment(result.linked_to.size());
  metrics.query_candidates.Increment(result.candidates);
  if (result.degraded) metrics.query_degraded.Increment();
  metrics.query_seconds.Observe(timer.ElapsedSeconds());
  return result;
}

LinkageService::AddResult LinkageService::AddGroup(
    const std::string& label, const std::vector<std::string>& record_texts) {
  std::vector<AddResult> results = AddGroups({{label, record_texts}});
  return std::move(results.front());
}

std::vector<LinkageService::AddResult> LinkageService::AddGroups(
    const std::vector<GroupArrival>& batch) {
  if (batch.empty()) return {};
  std::vector<AddResult> results;
  std::shared_ptr<const CorpusSnapshot> to_persist;
  {
    MutexLock lock(&impl_->mu);
    results = impl_->linker->AddGroups(batch);
    bool inline_refreshed = false;
    for (const AddResult& result : results) {
      inline_refreshed = inline_refreshed || result.triggered_refresh;
    }
    to_persist = impl_->AfterMutationLocked(
        Impl::Op{Impl::Op::Kind::kAdd, batch, 0, 0}, inline_refreshed);
  }
  if (to_persist != nullptr) (void)impl_->PersistPublished(to_persist);
  return results;
}

void LinkageService::RemoveGroup(int32_t group) {
  MutexLock lock(&impl_->mu);
  impl_->linker->RemoveGroup(group);
  // Removals never inline-refresh, so there is never a persist to run.
  (void)impl_->AfterMutationLocked(Impl::Op{Impl::Op::Kind::kRemove, {}, group, 0},
                                   /*inline_refreshed=*/false);
}

LinkageService::AddResult LinkageService::MergeGroups(int32_t into,
                                                      int32_t from) {
  MutexLock lock(&impl_->mu);
  AddResult result = impl_->linker->MergeGroups(into, from);
  (void)impl_->AfterMutationLocked(Impl::Op{Impl::Op::Kind::kMerge, {}, into, from},
                                   /*inline_refreshed=*/false);
  return result;
}

void LinkageService::Refresh() {
  // Drain the background build first; a concurrent mutation may start
  // another one between the wait and the lock, so loop until the lock is
  // held with nothing in flight (an inline refresh during a swap would
  // be silently overwritten by it otherwise).
  std::shared_ptr<const CorpusSnapshot> to_persist;
  for (;;) {
    WaitForRefresh();
    MutexLock lock(&impl_->mu);
    if (impl_->in_flight) continue;
    impl_->linker->Refresh();
    impl_->PublishLocked(*impl_->linker);
    impl_->NoteRefreshSuccessLocked();
    ServiceMetrics::Get().refreshes_sync.Increment();
    if (impl_->config.persist_on_refresh) to_persist = impl_->cell.Load();
    break;
  }
  if (to_persist != nullptr) (void)impl_->PersistPublished(to_persist);
}

bool LinkageService::RefreshAsync() {
  MutexLock lock(&impl_->mu);
  if (impl_->in_flight) return false;
  impl_->StartRefreshLocked();
  return true;
}

void LinkageService::WaitForRefresh() { impl_->refresh_pool->Wait(); }

bool LinkageService::refresh_in_flight() const {
  MutexLock lock(&impl_->mu);
  return impl_->in_flight;
}

Status LinkageService::last_refresh_status() const {
  MutexLock lock(&impl_->mu);
  return impl_->last_refresh;
}

int64_t LinkageService::consecutive_refresh_failures() const {
  MutexLock lock(&impl_->mu);
  return impl_->consecutive_refresh_failures;
}

std::string LinkageService::last_refresh_culprit() const {
  MutexLock lock(&impl_->mu);
  return impl_->last_refresh_culprit;
}

double LinkageService::published_age_ms() const {
  MutexLock lock(&impl_->mu);
  return std::chrono::duration<double, std::milli>(Impl::Clock::now() -
                                                   impl_->last_publish_at)
      .count();
}

double LinkageService::refresh_inflight_ms() const {
  MutexLock lock(&impl_->mu);
  if (!impl_->in_flight) return 0.0;
  return std::chrono::duration<double, std::milli>(Impl::Clock::now() -
                                                   impl_->refresh_started_at)
      .count();
}

int32_t LinkageService::groups_since_refresh() const {
  MutexLock lock(&impl_->mu);
  return impl_->linker->groups_since_refresh();
}

Status LinkageService::PersistNow() {
  if (impl_->config.persist_path.empty()) {
    return Status::InvalidArgument(
        "PersistNow requires ServiceConfig::persist_path");
  }
  return impl_->PersistPublished(impl_->cell.Load());
}

Status LinkageService::last_persist_status() const {
  MutexLock lock(&impl_->persist_mu);
  return impl_->last_persist;
}

int64_t LinkageService::published_epoch() const {
  return impl_->cell.Load()->epoch();
}

int64_t LinkageService::writer_epoch() const {
  MutexLock lock(&impl_->mu);
  return impl_->linker->epoch();
}

int32_t LinkageService::num_groups() const {
  MutexLock lock(&impl_->mu);
  return impl_->linker->num_groups();
}

std::vector<std::pair<int32_t, int32_t>> LinkageService::linked_pairs() const {
  MutexLock lock(&impl_->mu);
  return impl_->linker->linked_pairs();
}

const ServiceConfig& LinkageService::config() const { return impl_->config; }

}  // namespace grouplink
