#include "core/edge_join.h"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "index/prefix_filter.h"
#include "text/vector_store.h"

namespace grouplink {
namespace {

struct Edge {
  int32_t left_pos;
  int32_t right_pos;
  double weight;
};

// A verified cross-group edge tagged with its (oriented) bucket key.
struct BucketedEdge {
  int32_t group_left;
  int32_t group_right;
  Edge edge;
};

// Batched verification flushes once this many candidates are pending for
// the current probe (and always on a probe change / shard end).
constexpr size_t kVerifyBatch = 256;

// Join-stage output of one shard of probe documents. Each shard is
// written by exactly one worker; no synchronization needed.
struct ShardOutput {
  size_t candidates = 0;
  std::vector<BucketedEdge> edges;
  // Batched-verify state (store path only): flat SoA buffers of the
  // current probe's cross-group candidates and their scores.
  int32_t pending_probe = -1;
  std::vector<int32_t> pending;
  std::vector<double> scores;
  double seconds_verify = 0.0;
  size_t verify_batches = 0;
};

// Outcome category of one bucket (mirrors filter_refine.cc). kSkipped is
// the preallocated default, so a bucket a stop request prevented from
// scoring stays in a well-defined state.
enum class Decision : uint8_t {
  kSkipped = 0,
  kShedByCap,
  kPrunedByUpperBound,
  kAcceptedByLowerBound,
  kRefinedLink,
  kRefinedNoLink,
  kDegradedLink,
  kDegradedNoLink,
};

}  // namespace

std::vector<std::pair<int32_t, int32_t>> EdgeJoinLink(
    const Dataset& dataset, const std::vector<std::vector<int32_t>>& record_tokens,
    int32_t num_tokens, const std::vector<int32_t>& record_group,
    const RecordSimFn& sim, const EdgeJoinConfig& config, EdgeJoinStats* stats,
    ThreadPool* pool, ExecutionContext* ctx, const VectorStore* store) {
  GL_CHECK_GT(config.theta, 0.0);
  GL_CHECK_EQ(record_tokens.size(), dataset.records.size());
  GL_CHECK_EQ(record_group.size(), dataset.records.size());

  EdgeJoinStats local_stats;
  EdgeJoinStats& s = stats != nullptr ? *stats : local_stats;
  s = EdgeJoinStats();

  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && config.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(static_cast<size_t>(config.num_threads));
    pool = owned_pool.get();
  }
  const size_t threads = pool != nullptr ? pool->num_threads() : 1;
  s.threads_used = static_cast<int32_t>(threads);

  // Position of each record within its group (graph node index).
  std::vector<int32_t> local_pos(dataset.records.size(), 0);
  for (const Group& group : dataset.groups) {
    for (size_t i = 0; i < group.record_ids.size(); ++i) {
      local_pos[static_cast<size_t>(group.record_ids[i])] = static_cast<int32_t>(i);
    }
  }

  // Stage 1+2 (join + verify): shard probe documents across the pool; each
  // worker verifies its candidates with `sim` inline (the fn must be
  // thread-safe — the engine's TF-IDF cosine is a pure read) and appends
  // surviving cross-group edges to its shard's buffer. A few shards per
  // worker absorb the skew of later probes seeing more candidates.
  WallTimer timer;
  // Sharded counter on the verify hot path: workers increment concurrently
  // from inside the join, one relaxed add on a thread-local shard each.
  static Counter& m_sim_evals =
      MetricsRegistry::Default().CounterRef("edge_join.sim_evaluations");
  const size_t num_shards =
      threads <= 1 ? 1
                   : std::min(std::max<size_t>(record_tokens.size(), 1), threads * 4);
  std::vector<ShardOutput> shard_outputs(num_shards);

  // Appends one verified edge (weight >= θ already checked). The bucket
  // key is oriented as (min group, max group); the edge endpoints follow
  // the same orientation.
  const auto append_edge = [&](ShardOutput& out, int32_t r1, int32_t r2,
                               int32_t g1, int32_t g2, double weight) {
    const bool in_order = g1 < g2;
    const int32_t left_record = in_order ? r1 : r2;
    const int32_t right_record = in_order ? r2 : r1;
    out.edges.push_back({std::min(g1, g2), std::max(g1, g2),
                         {local_pos[static_cast<size_t>(left_record)],
                          local_pos[static_cast<size_t>(right_record)], weight}});
  };

  {
    GL_TRACE_SPAN("edge_join.join");
    if (store != nullptr) {
      // Batched verification: per shard, buffer the current probe's
      // cross-group candidates (SoA) and flush them through the dispatched
      // scatter-dot kernel. Scores() is bitwise-equal to the default sim
      // per pair, candidates stream grouped by probe within a shard, and
      // edges are appended in candidate order — the edge sequence (and
      // everything downstream) is identical to the inline path.
      std::vector<VectorStore::Scratch> scratches(num_shards);
      const auto flush = [&](size_t shard) {
        ShardOutput& out = shard_outputs[shard];
        const size_t pending = out.pending.size();
        if (pending == 0) return;
        out.scores.resize(pending);
        WallTimer verify_timer;
        store->Scores(scratches[shard], out.pending_probe, out.pending.data(),
                      pending, out.scores.data());
        out.seconds_verify += verify_timer.ElapsedSeconds();
        ++out.verify_batches;
        m_sim_evals.Increment(pending);
        const int32_t r2 = out.pending_probe;
        const int32_t g2 = record_group[static_cast<size_t>(r2)];
        for (size_t k = 0; k < pending; ++k) {
          if (out.scores[k] < config.theta) continue;
          const int32_t r1 = out.pending[k];
          append_edge(out, r1, r2, record_group[static_cast<size_t>(r1)], g2,
                      out.scores[k]);
        }
        out.pending.clear();
      };
      s.probes_skipped = PrefixFilterSelfJoinSharded(
          record_tokens, num_tokens, config.join_jaccard,
          threads > 1 ? pool : nullptr, num_shards,
          [&](size_t shard, int32_t r1, int32_t r2) {
            ShardOutput& out = shard_outputs[shard];
            ++out.candidates;
            if (record_group[static_cast<size_t>(r1)] ==
                record_group[static_cast<size_t>(r2)]) {
              return;
            }
            // A mid-probe flush (batch cap) keeps the probe's scatter
            // cached in the scratch, so oversized probes still batch.
            if (r2 != out.pending_probe) {
              flush(shard);
              out.pending_probe = r2;
            }
            out.pending.push_back(r1);
            if (out.pending.size() >= kVerifyBatch) flush(shard);
          },
          ctx, /*shard_done=*/flush);
    } else {
      // Custom similarity: verify inline, one call per candidate pair.
      s.probes_skipped = PrefixFilterSelfJoinSharded(
          record_tokens, num_tokens, config.join_jaccard,
          threads > 1 ? pool : nullptr, num_shards,
          [&](size_t shard, int32_t r1, int32_t r2) {
            ShardOutput& out = shard_outputs[shard];
            ++out.candidates;
            const int32_t g1 = record_group[static_cast<size_t>(r1)];
            const int32_t g2 = record_group[static_cast<size_t>(r2)];
            if (g1 == g2) return;
            m_sim_evals.Increment();
            const double weight = sim(r1, r2);
            if (weight < config.theta) return;
            append_edge(out, r1, r2, g1, g2, weight);
          },
          ctx);
    }
    if (s.probes_skipped > 0) TagCurrentSpan("probes_skipped",
                                             std::to_string(s.probes_skipped));
  }
  s.seconds_join = timer.ElapsedSeconds();
  // Store path: verify time is what the shard workers measured around the
  // batched kernel (CPU-seconds; see EdgeJoinStats). Custom-sim path:
  // folded into the streaming join workers, left at 0.
  s.seconds_verify = 0.0;
  s.verify_batches = 0;
  for (const ShardOutput& out : shard_outputs) {
    s.seconds_verify += out.seconds_verify;
    s.verify_batches += out.verify_batches;
  }

  // Deterministic merge: shards cover ascending contiguous probe ranges
  // and stream candidates in serial order within each range, so
  // concatenating buffers in shard index order reproduces the serial
  // emission order exactly — independent of thread count and scheduling.
  // std::map keeps group pairs in deterministic order.
  timer.Reset();
  std::map<std::pair<int32_t, int32_t>, std::vector<Edge>> buckets;
  {
    GL_TRACE_SPAN("edge_join.bucket");
    for (const ShardOutput& out : shard_outputs) {
      s.record_candidates += out.candidates;
      s.edges += out.edges.size();
      for (const BucketedEdge& bucketed : out.edges) {
        buckets[{bucketed.group_left, bucketed.group_right}].push_back(bucketed.edge);
      }
    }
  }
  s.group_pairs = buckets.size();
  s.seconds_bucket = timer.ElapsedSeconds();

  // Stage 3 (score): buckets are independent, so score them in parallel
  // into preallocated decision slots and aggregate serially in bucket
  // order (mirrors filter_refine.cc).
  timer.Reset();
  GL_TRACE_SPAN("edge_join.score");
  struct BucketRef {
    std::pair<int32_t, int32_t> groups;
    const std::vector<Edge>* edges;
  };
  std::vector<BucketRef> bucket_refs;
  bucket_refs.reserve(buckets.size());
  for (const auto& [group_pair, edges] : buckets) {
    bucket_refs.push_back({group_pair, &edges});
  }

  // Builds the bucket's bipartite graph from its edge list.
  const auto build_graph = [&](size_t i) {
    const auto& [g1, g2] = bucket_refs[i].groups;
    BipartiteGraph graph(dataset.GroupSize(g1), dataset.GroupSize(g2));
    for (const Edge& edge : *bucket_refs[i].edges) {
      graph.AddEdge(edge.left_pos, edge.right_pos, edge.weight);
    }
    return graph;
  };

  std::vector<Decision> decisions(bucket_refs.size(), Decision::kSkipped);

  // Candidate budget (and the candidates.oversized fault): keep the best
  // buckets by UB score — deterministic, it depends only on the buckets.
  std::vector<char> keep;
  const size_t cap =
      ctx != nullptr ? ctx->EffectiveCandidateCap(bucket_refs.size()) : bucket_refs.size();
  if (cap < bucket_refs.size()) {
    std::vector<double> ub(bucket_refs.size(), 0.0);
    ParallelFor(pool, bucket_refs.size(), [&](size_t i) {
      const auto& [g1, g2] = bucket_refs[i].groups;
      ub[i] = UpperBoundMeasure(build_graph(i), dataset.GroupSize(g1),
                                dataset.GroupSize(g2));
    });
    std::vector<size_t> order(bucket_refs.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::nth_element(order.begin(), order.begin() + static_cast<ptrdiff_t>(cap),
                     order.end(), [&](size_t a, size_t b) {
                       if (ub[a] != ub[b]) return ub[a] > ub[b];
                       return a < b;
                     });
    keep.assign(bucket_refs.size(), 0);
    for (size_t k = 0; k < cap; ++k) keep[order[k]] = 1;
    for (size_t i = 0; i < keep.size(); ++i) {
      if (!keep[i]) decisions[i] = Decision::kShedByCap;
    }
    ctx->NoteDegraded();
  }

  ParallelFor(
      pool, bucket_refs.size(),
      [&](size_t i) {
        if (!keep.empty() && !keep[i]) return;  // Stays kShedByCap.
        const auto& [g1, g2] = bucket_refs[i].groups;
        const int32_t size_left = dataset.GroupSize(g1);
        const int32_t size_right = dataset.GroupSize(g2);
        const BipartiteGraph graph = build_graph(i);
        if (config.use_upper_bound_filter &&
            UpperBoundMeasure(graph, size_left, size_right) < config.group_threshold) {
          decisions[i] = Decision::kPrunedByUpperBound;
          return;
        }
        if (config.use_lower_bound_accept &&
            GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold) {
          decisions[i] = Decision::kAcceptedByLowerBound;
          return;
        }
        // Matcher budget: bounds-only decision on oversized pairs (LB is a
        // sound lower bound on BM, so this only ever under-links).
        const int64_t matcher_cost =
            static_cast<int64_t>(size_left) * static_cast<int64_t>(size_right);
        if (ctx != nullptr && ctx->ExceedsMatcherBudget(matcher_cost)) {
          decisions[i] =
              GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold
                  ? Decision::kDegradedLink
                  : Decision::kDegradedNoLink;
          return;
        }
        decisions[i] =
            BmMeasure(graph, size_left, size_right, ctx).value >= config.group_threshold
                ? Decision::kRefinedLink
                : Decision::kRefinedNoLink;
      },
      ctx);

  std::vector<std::pair<int32_t, int32_t>> linked;
  for (size_t i = 0; i < bucket_refs.size(); ++i) {
    bool link = false;
    switch (decisions[i]) {
      case Decision::kSkipped:
        ++s.skipped;
        break;
      case Decision::kShedByCap:
        ++s.shed_candidates;
        break;
      case Decision::kPrunedByUpperBound:
        ++s.pruned_by_upper_bound;
        break;
      case Decision::kAcceptedByLowerBound:
        ++s.accepted_by_lower_bound;
        link = true;
        break;
      case Decision::kRefinedLink:
        ++s.refined;
        link = true;
        break;
      case Decision::kRefinedNoLink:
        ++s.refined;
        break;
      case Decision::kDegradedLink:
        ++s.degraded_refines;
        link = true;
        break;
      case Decision::kDegradedNoLink:
        ++s.degraded_refines;
        break;
    }
    if (link) {
      linked.push_back(bucket_refs[i].groups);
      ++s.linked;
    }
  }
  if (ctx != nullptr && (s.skipped > 0 || s.degraded_refines > 0)) {
    ctx->NoteDegraded();
  }
  if (s.skipped > 0) TagCurrentSpan("buckets_skipped", std::to_string(s.skipped));
  if (s.shed_candidates > 0) {
    TagCurrentSpan("buckets_shed", std::to_string(s.shed_candidates));
  }
  s.seconds_score = timer.ElapsedSeconds();

  // Registry mirror (aggregated once per run) + bucket-size distribution.
  auto& registry = MetricsRegistry::Default();
  static Counter& m_candidates = registry.CounterRef("edge_join.record_candidates");
  static Counter& m_edges = registry.CounterRef("edge_join.edges");
  static Counter& m_group_pairs = registry.CounterRef("edge_join.group_pairs");
  static Counter& m_ub = registry.CounterRef("edge_join.ub_pruned");
  static Counter& m_lb = registry.CounterRef("edge_join.lb_accepted");
  static Counter& m_refined = registry.CounterRef("edge_join.refined");
  static Counter& m_linked = registry.CounterRef("edge_join.linked");
  static Counter& m_probes_skipped = registry.CounterRef("edge_join.probes_skipped");
  static Counter& m_shed = registry.CounterRef("edge_join.shed_candidates");
  static Counter& m_degraded = registry.CounterRef("edge_join.degraded_refines");
  static Counter& m_skipped = registry.CounterRef("edge_join.skipped");
  static Histogram& m_bucket_size = registry.HistogramRef(
      "edge_join.bucket_size", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  m_candidates.Increment(s.record_candidates);
  m_edges.Increment(s.edges);
  m_group_pairs.Increment(s.group_pairs);
  m_ub.Increment(s.pruned_by_upper_bound);
  m_lb.Increment(s.accepted_by_lower_bound);
  m_refined.Increment(s.refined);
  m_linked.Increment(s.linked);
  m_probes_skipped.Increment(s.probes_skipped);
  m_shed.Increment(s.shed_candidates);
  m_degraded.Increment(s.degraded_refines);
  m_skipped.Increment(s.skipped);
  for (const BucketRef& bucket : bucket_refs) {
    m_bucket_size.Observe(static_cast<double>(bucket.edges->size()));
  }
  return linked;
}

}  // namespace grouplink
