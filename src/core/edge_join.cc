#include "core/edge_join.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/timer.h"
#include "index/prefix_filter.h"

namespace grouplink {
namespace {

struct Edge {
  int32_t left_pos;
  int32_t right_pos;
  double weight;
};

}  // namespace

std::vector<std::pair<int32_t, int32_t>> EdgeJoinLink(
    const Dataset& dataset, const std::vector<std::vector<int32_t>>& record_tokens,
    int32_t num_tokens, const std::vector<int32_t>& record_group,
    const RecordSimFn& sim, const EdgeJoinConfig& config, EdgeJoinStats* stats) {
  GL_CHECK_GT(config.theta, 0.0);
  GL_CHECK_EQ(record_tokens.size(), dataset.records.size());
  GL_CHECK_EQ(record_group.size(), dataset.records.size());

  EdgeJoinStats local_stats;
  EdgeJoinStats& s = stats != nullptr ? *stats : local_stats;
  s = EdgeJoinStats();

  // Position of each record within its group (graph node index).
  std::vector<int32_t> local_pos(dataset.records.size(), 0);
  for (const Group& group : dataset.groups) {
    for (size_t i = 0; i < group.record_ids.size(); ++i) {
      local_pos[static_cast<size_t>(group.record_ids[i])] = static_cast<int32_t>(i);
    }
  }

  // Stream candidates out of the prefix-filter join, verifying each with
  // `sim` inline and bucketing surviving cross-group edges by group pair.
  // std::map keeps group pairs in deterministic order.
  WallTimer timer;
  std::map<std::pair<int32_t, int32_t>, std::vector<Edge>> buckets;
  PrefixFilterSelfJoinStreaming(
      record_tokens, num_tokens, config.join_jaccard,
      [&](int32_t r1, int32_t r2) {
        ++s.record_candidates;
        const int32_t g1 = record_group[static_cast<size_t>(r1)];
        const int32_t g2 = record_group[static_cast<size_t>(r2)];
        if (g1 == g2) return;
        const double weight = sim(r1, r2);
        if (weight < config.theta) return;
        ++s.edges;
        // Orient the bucket key as (min group, max group); the edge
        // endpoints follow the same orientation.
        const bool in_order = g1 < g2;
        const int32_t left_record = in_order ? r1 : r2;
        const int32_t right_record = in_order ? r2 : r1;
        buckets[{std::min(g1, g2), std::max(g1, g2)}].push_back(
            {local_pos[static_cast<size_t>(left_record)],
             local_pos[static_cast<size_t>(right_record)], weight});
      });
  s.seconds_join = timer.ElapsedSeconds();
  s.seconds_verify = 0.0;  // Folded into the streaming join.
  s.group_pairs = buckets.size();

  timer.Reset();
  std::vector<std::pair<int32_t, int32_t>> linked;
  for (const auto& [group_pair, edges] : buckets) {
    const auto& [g1, g2] = group_pair;
    const int32_t size_left = dataset.GroupSize(g1);
    const int32_t size_right = dataset.GroupSize(g2);
    BipartiteGraph graph(size_left, size_right);
    for (const Edge& edge : edges) {
      graph.AddEdge(edge.left_pos, edge.right_pos, edge.weight);
    }

    bool decided = false;
    bool link = false;
    if (config.use_upper_bound_filter &&
        UpperBoundMeasure(graph, size_left, size_right) < config.group_threshold) {
      ++s.pruned_by_upper_bound;
      decided = true;
    }
    if (!decided && config.use_lower_bound_accept &&
        GreedyLowerBound(graph, size_left, size_right) >= config.group_threshold) {
      ++s.accepted_by_lower_bound;
      decided = true;
      link = true;
    }
    if (!decided) {
      ++s.refined;
      link = BmMeasure(graph, size_left, size_right).value >= config.group_threshold;
    }
    if (link) {
      linked.push_back(group_pair);
      ++s.linked;
    }
  }
  s.seconds_score = timer.ElapsedSeconds();
  return linked;
}

}  // namespace grouplink
