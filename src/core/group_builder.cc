#include "core/group_builder.h"

#include <map>
#include <utility>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/union_find.h"
#include "text/jaccard.h"

namespace grouplink {
namespace {

std::string NormalizeKey(const std::string& key) {
  return Join(SplitWhitespace(AsciiToLower(key)), " ");
}

// Builds a Dataset from records and a per-record group label; labels in
// order of first appearance. Empty labels become unique singletons.
Dataset AssembleDataset(std::vector<Record> records,
                        const std::vector<std::string>& labels) {
  Dataset dataset;
  std::map<std::string, int32_t> group_of_label;
  size_t singleton_counter = 0;
  for (size_t r = 0; r < records.size(); ++r) {
    std::string label = labels[r];
    if (label.empty()) {
      label = "(unkeyed record " + std::to_string(singleton_counter++) + ")";
    }
    auto [it, inserted] =
        group_of_label.try_emplace(label, static_cast<int32_t>(dataset.groups.size()));
    if (inserted) {
      Group group;
      group.id = label;
      group.label = label;
      dataset.groups.push_back(std::move(group));
    }
    dataset.groups[static_cast<size_t>(it->second)].record_ids.push_back(
        static_cast<int32_t>(dataset.records.size()));
    dataset.records.push_back(std::move(records[r]));
  }
  GL_CHECK(dataset.Validate().ok());
  return dataset;
}

}  // namespace

Dataset BuildGroupsByKey(std::vector<Record> records, const GroupKeyFn& key_fn) {
  std::vector<std::string> labels;
  labels.reserve(records.size());
  for (const Record& record : records) labels.push_back(NormalizeKey(key_fn(record)));
  return AssembleDataset(std::move(records), labels);
}

Dataset BuildGroupsByFuzzyKey(std::vector<Record> records, const GroupKeyFn& key_fn,
                              const FuzzyKeyConfig& config) {
  // Distinct normalized keys.
  std::vector<std::string> record_keys;
  record_keys.reserve(records.size());
  std::map<std::string, int32_t> key_index;
  std::vector<std::string> keys;
  for (const Record& record : records) {
    const std::string key = NormalizeKey(key_fn(record));
    record_keys.push_back(key);
    if (key.empty()) continue;
    if (key_index.try_emplace(key, static_cast<int32_t>(keys.size())).second) {
      keys.push_back(key);
    }
  }

  // Merge similar keys: blocking candidates + q-gram Jaccard verification.
  UnionFind clusters(keys.size());
  Blocker blocker(config.blocking);
  for (size_t k = 0; k < keys.size(); ++k) {
    blocker.Add(static_cast<int32_t>(k), keys[k]);
  }
  for (const auto& [k1, k2] : blocker.CandidatePairs()) {
    if (QGramJaccard(keys[static_cast<size_t>(k1)], keys[static_cast<size_t>(k2)]) >=
        config.similarity_threshold) {
      clusters.Union(static_cast<size_t>(k1), static_cast<size_t>(k2));
    }
  }

  // Canonical label per cluster: the key most records carry (ties by
  // lexicographic order for determinism).
  std::map<std::string, size_t> key_counts;
  for (const std::string& key : record_keys) {
    if (!key.empty()) ++key_counts[key];
  }
  std::vector<std::string> canonical(keys.size());
  std::map<size_t, std::pair<size_t, std::string>> best_of_cluster;
  for (size_t k = 0; k < keys.size(); ++k) {
    const size_t root = clusters.Find(k);
    const size_t count = key_counts[keys[k]];
    auto it = best_of_cluster.find(root);
    if (it == best_of_cluster.end() || count > it->second.first ||
        (count == it->second.first && keys[k] < it->second.second)) {
      best_of_cluster[root] = {count, keys[k]};
    }
  }
  for (size_t k = 0; k < keys.size(); ++k) {
    canonical[k] = best_of_cluster[clusters.Find(k)].second;
  }

  std::vector<std::string> labels;
  labels.reserve(records.size());
  for (const std::string& key : record_keys) {
    if (key.empty()) {
      labels.push_back("");
    } else {
      labels.push_back(canonical[static_cast<size_t>(key_index[key])]);
    }
  }
  return AssembleDataset(std::move(records), labels);
}

}  // namespace grouplink
