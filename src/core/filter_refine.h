#ifndef GROUPLINK_CORE_FILTER_REFINE_H_
#define GROUPLINK_CORE_FILTER_REFINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/thread_pool.h"
#include "core/group_measures.h"

namespace grouplink {

/// Configuration of the two-phase BM evaluation.
struct FilterRefineConfig {
  /// Record-level edge threshold θ (must be > 0).
  double theta = 0.7;
  /// Group-level link threshold Θ.
  double group_threshold = 0.4;
  /// Prune candidates with UB < Θ before computing exact BM.
  bool use_upper_bound_filter = true;
  /// Accept candidates with LB >= Θ without computing exact BM.
  bool use_lower_bound_accept = true;
};

/// Per-phase counters of one FilterRefineLink run.
struct FilterRefineStats {
  /// Candidate group pairs examined.
  size_t candidates = 0;
  /// Dropped because the thresholded graph had no edges at all.
  size_t empty_graphs = 0;
  /// Pruned by UB < Θ.
  size_t pruned_by_upper_bound = 0;
  /// Accepted by LB >= Θ (no exact matching run).
  size_t accepted_by_lower_bound = 0;
  /// Survivors sent to the Hungarian refine step.
  size_t refined = 0;
  /// Final links emitted.
  size_t linked = 0;
  /// Shed by the candidate cap (budget or injected oversize) before any
  /// scoring; decided by UB order, deterministically.
  size_t shed_candidates = 0;
  /// Decided with the bounds-only fallback instead of Hungarian because
  /// the per-pair matcher budget tripped.
  size_t degraded_refines = 0;
  /// Never scored: the deadline or cancellation tripped first.
  size_t skipped = 0;
  /// Wall time spent building similarity graphs / in bounds / in refine.
  double seconds_graphs = 0.0;
  double seconds_bounds = 0.0;
  double seconds_refine = 0.0;
};

/// Decides, for each candidate group pair, whether BM_θ >= Θ, using the
/// filter-and-refine strategy. With sound bounds (the default) the output
/// is *identical* to evaluating exact BM on every candidate — that
/// equivalence is covered by an integration test — while the Hungarian
/// algorithm only runs on the small fraction of pairs where the bounds
/// disagree.
///
/// Returns the linked pairs (subset of `candidates`, same order).
///
/// With a non-null `pool`, candidates are scored in parallel (`sim` must
/// then be thread-safe — the engine's default TF-IDF cosine is, being a
/// pure read of precomputed vectors). The output and stats counters are
/// identical to the serial run; the per-phase timing breakdown is only
/// populated serially.
///
/// With a non-null `ctx`, the run degrades instead of running unbounded:
/// a candidate budget keeps only the top pairs by upper-bound score
/// (deterministic — depends on the pairs alone, not timing), the matcher
/// budget swaps Hungarian for the sound bounds-only fallback on oversized
/// pairs, and a deadline/cancellation trip sheds the remaining pairs.
/// Every degraded decision can only *remove* links relative to the
/// unconstrained run, so the output is always a subset of it.
///
/// With a non-null `store` (the engine passes its VectorStore when `sim`
/// is the default TF-IDF similarity), similarity graphs are built through
/// the batched scatter-dot kernel (one VectorStore::Scores call per left
/// record) and a sorted-set-intersection precheck on the groups' token
/// unions classifies zero-overlap pairs as empty graphs without scoring a
/// single record pair. Both are exact for the default sim — decisions,
/// stats, and links are identical to the `sim`-driven path bit for bit.
/// Callers overriding `sim` must pass store = nullptr.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> FilterRefineLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats = nullptr,
    ThreadPool* pool = nullptr, ExecutionContext* ctx = nullptr,
    const VectorStore* store = nullptr);

/// Single-pair link decision on a prebuilt θ-thresholded similarity
/// graph: the exact decision ladder of the pipeline's per-pair scoring —
/// empty graph -> no link, UB < Θ -> prune, LB >= Θ -> accept, matcher
/// budget trip -> decide from the sound LB (marking `ctx` degraded),
/// otherwise exact BM >= Θ. This is the one definition of "do these two
/// groups link" shared by the streaming arrival path
/// (IncrementalLinker::DecideLink) and the serving read path
/// (CorpusSnapshot::LinkQuery); FilterRefineLink's batch loop keeps its
/// own stats-annotated copy of the same ladder, which the streaming ==
/// batch equivalence suite holds bit-equal to this one.
///
/// `size_left` / `size_right` are the group sizes |g1| / |g2| (the graph
/// only has cross edges, so isolated records are invisible to it).
[[nodiscard]] bool DecideGraphLinked(const BipartiteGraph& graph,
                                     int32_t size_left, int32_t size_right,
                                     const FilterRefineConfig& config,
                                     const ExecutionContext* ctx = nullptr);

/// Reference path: exact BM on every candidate, no bounds. Same output
/// contract as FilterRefineLink.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> BruteForceBmLink(
    const Dataset& dataset, const RecordSimFn& sim,
    const std::vector<std::pair<int32_t, int32_t>>& candidates,
    const FilterRefineConfig& config, FilterRefineStats* stats = nullptr);

}  // namespace grouplink

#endif  // GROUPLINK_CORE_FILTER_REFINE_H_
