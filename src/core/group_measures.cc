#include "core/group_measures.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "matching/greedy.h"
#include "matching/hopcroft_karp.h"
#include "matching/hungarian.h"
#include "matching/semi_matching.h"
#include "matching/ssp_matching.h"

namespace grouplink {

BipartiteGraph BuildSimilarityGraph(const Dataset& dataset, int32_t g1, int32_t g2,
                                    const RecordSimFn& sim, double theta) {
  GL_CHECK_GT(theta, 0.0);
  const Group& left = dataset.groups[static_cast<size_t>(g1)];
  const Group& right = dataset.groups[static_cast<size_t>(g2)];
  BipartiteGraph graph(static_cast<int32_t>(left.record_ids.size()),
                       static_cast<int32_t>(right.record_ids.size()));
  for (size_t i = 0; i < left.record_ids.size(); ++i) {
    for (size_t j = 0; j < right.record_ids.size(); ++j) {
      const double s = sim(left.record_ids[i], right.record_ids[j]);
      GL_DCHECK(s >= 0.0 && s <= 1.0 + 1e-9);
      if (s >= theta) {
        graph.AddEdge(static_cast<int32_t>(i), static_cast<int32_t>(j), s);
      }
    }
  }
  return graph;
}

BipartiteGraph BuildSimilarityGraphBatched(const Dataset& dataset, int32_t g1,
                                           int32_t g2, const VectorStore& store,
                                           VectorStore::Scratch& scratch,
                                           double theta) {
  GL_CHECK_GT(theta, 0.0);
  const Group& left = dataset.groups[static_cast<size_t>(g1)];
  const Group& right = dataset.groups[static_cast<size_t>(g2)];
  BipartiteGraph graph(static_cast<int32_t>(left.record_ids.size()),
                       static_cast<int32_t>(right.record_ids.size()));
  if (right.record_ids.empty()) return graph;
  std::vector<double> scores(right.record_ids.size());
  for (size_t i = 0; i < left.record_ids.size(); ++i) {
    // One batch per left record: Group::record_ids is already the
    // contiguous candidate array the kernel wants.
    store.Scores(scratch, left.record_ids[i], right.record_ids.data(),
                 right.record_ids.size(), scores.data());
    for (size_t j = 0; j < right.record_ids.size(); ++j) {
      GL_DCHECK(scores[j] >= 0.0 && scores[j] <= 1.0 + 1e-9);
      if (scores[j] >= theta) {
        graph.AddEdge(static_cast<int32_t>(i), static_cast<int32_t>(j), scores[j]);
      }
    }
  }
  return graph;
}

double NormalizeMatchingScore(double weight, int32_t size, int32_t size_left,
                              int32_t size_right) {
  const int32_t denominator = size_left + size_right - size;
  if (denominator <= 0) {
    // Only possible when both groups are empty (size == 0 too): identical.
    return size_left == 0 && size_right == 0 ? 1.0 : 0.0;
  }
  return weight / static_cast<double>(denominator);
}

namespace {

GroupScore ScoreFromMatching(const Matching& matching, int32_t size_left,
                             int32_t size_right) {
  GroupScore score;
  score.matching_weight = matching.total_weight;
  score.matching_size = matching.size;
  score.value = NormalizeMatchingScore(matching.total_weight, matching.size, size_left,
                                       size_right);
  return score;
}

}  // namespace

GroupScore BmMeasure(const BipartiteGraph& graph, int32_t size_left,
                     int32_t size_right, const ExecutionContext* ctx) {
  return ScoreFromMatching(HungarianMaxWeightMatching(graph, ctx), size_left,
                           size_right);
}

GroupScore GreedyMeasure(const BipartiteGraph& graph, int32_t size_left,
                         int32_t size_right) {
  return ScoreFromMatching(GreedyMaxWeightMatching(graph), size_left, size_right);
}

double UpperBoundMeasure(const BipartiteGraph& graph, int32_t size_left,
                         int32_t size_right) {
  if (size_left == 0 && size_right == 0) return 1.0;
  const SemiMatching semi = ComputeSemiMatching(graph);
  const double s = 0.5 * (semi.SumBestLeft() + semi.SumBestRight());
  const int32_t max_matching = std::min(semi.covered_left, semi.covered_right);
  const int32_t denominator = size_left + size_right - max_matching;
  GL_DCHECK(denominator > 0);
  return s / static_cast<double>(denominator);
}

double GreedyLowerBound(const BipartiteGraph& graph, int32_t size_left,
                        int32_t size_right) {
  if (size_left == 0 && size_right == 0) return 1.0;
  const Matching greedy = GreedyMaxWeightMatching(graph);
  const int32_t min_optimal_size = (greedy.size + 1) / 2;  // ceil(k_g / 2).
  const int32_t denominator = size_left + size_right - min_optimal_size;
  GL_DCHECK(denominator > 0);
  return greedy.total_weight / static_cast<double>(denominator);
}

GroupScore BinaryJaccardMeasure(const BipartiteGraph& graph, int32_t size_left,
                                int32_t size_right) {
  const Matching matching = HopcroftKarpMatching(graph);
  GroupScore score;
  score.matching_weight = static_cast<double>(matching.size);  // Edges count 1.
  score.matching_size = matching.size;
  score.value = NormalizeMatchingScore(score.matching_weight, matching.size, size_left,
                                       size_right);
  return score;
}

double SingleBestMeasure(const BipartiteGraph& graph) {
  double best = 0.0;
  for (const BipartiteEdge& e : graph.edges()) best = std::max(best, e.weight);
  return best;
}

double BmStarMeasure(const BipartiteGraph& graph, int32_t size_left,
                     int32_t size_right) {
  return MaxNormalizedMatchingScore(graph, size_left, size_right);
}

double ContainmentMeasure(const BipartiteGraph& graph, int32_t size_left,
                          int32_t size_right) {
  if (size_left == 0 && size_right == 0) return 1.0;
  if (size_left == 0 || size_right == 0) return 0.0;
  const Matching matching = HungarianMaxWeightMatching(graph);
  return matching.total_weight / static_cast<double>(std::min(size_left, size_right));
}

const char* GroupMeasureKindName(GroupMeasureKind kind) {
  switch (kind) {
    case GroupMeasureKind::kBm:
      return "BM";
    case GroupMeasureKind::kBmStar:
      return "BM*";
    case GroupMeasureKind::kGreedy:
      return "Greedy";
    case GroupMeasureKind::kUpperBound:
      return "UB";
    case GroupMeasureKind::kBinaryJaccard:
      return "Jaccard";
    case GroupMeasureKind::kSingleBest:
      return "SingleBest";
    case GroupMeasureKind::kContainment:
      return "Containment";
  }
  return "unknown";
}

double EvaluateGroupMeasure(GroupMeasureKind kind, const BipartiteGraph& graph,
                            int32_t size_left, int32_t size_right) {
  switch (kind) {
    case GroupMeasureKind::kBm:
      return BmMeasure(graph, size_left, size_right).value;
    case GroupMeasureKind::kBmStar:
      return BmStarMeasure(graph, size_left, size_right);
    case GroupMeasureKind::kGreedy:
      return GreedyMeasure(graph, size_left, size_right).value;
    case GroupMeasureKind::kUpperBound:
      return UpperBoundMeasure(graph, size_left, size_right);
    case GroupMeasureKind::kBinaryJaccard:
      return BinaryJaccardMeasure(graph, size_left, size_right).value;
    case GroupMeasureKind::kSingleBest:
      return SingleBestMeasure(graph);
    case GroupMeasureKind::kContainment:
      return ContainmentMeasure(graph, size_left, size_right);
  }
  return 0.0;
}

}  // namespace grouplink
