#include "core/snapshot.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "core/filter_refine.h"
#include "matching/bipartite_graph.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

struct SnapshotMetrics {
  Counter& captured;
  Counter& retired;
  Gauge& live;

  static SnapshotMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static SnapshotMetrics metrics{registry.CounterRef("snapshot.captured"),
                                   registry.CounterRef("snapshot.retired"),
                                   registry.GaugeRef("snapshot.live")};
    return metrics;
  }
};

}  // namespace

std::shared_ptr<const CorpusSnapshot> CorpusSnapshot::Capture(
    const IncrementalLinker& linker) {
  GL_CHECK(linker.initialized_) << "Capture requires an initialized linker";
  auto& metrics = SnapshotMetrics::Get();
  // The deleter is how retired epochs report their reclamation: the
  // live gauge tracks epochs still referenced somewhere (current + any
  // held by in-flight readers), the retired counter the total reclaimed.
  std::shared_ptr<CorpusSnapshot> snapshot(
      new CorpusSnapshot(), [&metrics](CorpusSnapshot* s) {
        delete s;
        metrics.retired.Increment();
        metrics.live.Add(-1.0);
      });

  snapshot->config_ = linker.config_;
  snapshot->epoch_ = linker.epoch_;
  snapshot->index_vocab_ = linker.index_vocab_;
  snapshot->token_index_ = linker.token_index_;
  snapshot->epoch_vocab_ = linker.epoch_vocab_;
  snapshot->record_vectors_ = linker.record_vectors_;
  snapshot->record_group_ = linker.record_group_;
  // Raw occurrences re-encoded as index-vocab ids: every raw token of a
  // live record was absorbed into the index vocabulary at arrival, so the
  // lookup never misses; tombstoned records have empty raw tokens.
  snapshot->record_token_ids_.resize(linker.record_raw_tokens_.size());
  for (size_t r = 0; r < linker.record_raw_tokens_.size(); ++r) {
    std::vector<int32_t>& ids = snapshot->record_token_ids_[r];
    ids.reserve(linker.record_raw_tokens_[r].size());
    for (const std::string& token : linker.record_raw_tokens_[r]) {
      const int32_t id = linker.index_vocab_.GetId(token);
      GL_DCHECK_NE(id, Vocabulary::kUnknownToken);
      ids.push_back(id);
    }
  }
  snapshot->group_records_ = linker.group_records_;
  snapshot->group_labels_ = linker.group_labels_;
  snapshot->group_alive_ = linker.group_alive_;
  snapshot->num_alive_groups_ = linker.num_alive_groups_;
  snapshot->linked_pairs_ = linker.linked_pairs_;
  snapshot->cluster_labels_ = linker.ClusterLabels();
  // Last write: the seal. Anything observing an unsealed snapshot went
  // around the publication barrier.
  snapshot->seal_ = kSealed;

  metrics.captured.Increment();
  metrics.live.Add(1.0);
  return snapshot;
}

Result<std::shared_ptr<const CorpusSnapshot>> CorpusSnapshot::FromParts(
    Parts parts) {
  auto& metrics = SnapshotMetrics::Get();
  // Same deleter contract as Capture: a recovered epoch participates in
  // the snapshot.live / snapshot.retired reclamation accounting.
  std::shared_ptr<CorpusSnapshot> snapshot(
      new CorpusSnapshot(), [&metrics](CorpusSnapshot* s) {
        delete s;
        metrics.retired.Increment();
        metrics.live.Add(-1.0);
      });
  snapshot->config_ = std::move(parts.config);
  snapshot->epoch_ = parts.epoch;
  snapshot->index_vocab_ = std::move(parts.index_vocab);
  snapshot->token_index_ = std::move(parts.token_index);
  snapshot->epoch_vocab_ = std::move(parts.epoch_vocab);
  snapshot->record_vectors_ = std::move(parts.record_vectors);
  snapshot->record_group_ = std::move(parts.record_group);
  snapshot->record_token_ids_ = std::move(parts.record_token_ids);
  snapshot->group_records_ = std::move(parts.group_records);
  snapshot->group_labels_ = std::move(parts.group_labels);
  snapshot->group_alive_ = std::move(parts.group_alive);
  snapshot->num_alive_groups_ = parts.num_alive_groups;
  snapshot->linked_pairs_ = std::move(parts.linked_pairs);
  snapshot->cluster_labels_ = std::move(parts.cluster_labels);
  snapshot->seal_ = kSealed;
  if (!snapshot->CheckConsistency()) {
    return Status::DataLoss(
        "recovered snapshot failed the consistency check: the store decoded "
        "cleanly but does not describe a valid epoch");
  }
  metrics.captured.Increment();
  metrics.live.Add(1.0);
  return std::shared_ptr<const CorpusSnapshot>(std::move(snapshot));
}

std::vector<int32_t> CorpusSnapshot::CandidateGroupsForProbe(
    const std::vector<std::vector<int32_t>>& probe_token_ids) const {
  std::vector<int32_t> groups;
  for (const std::vector<int32_t>& ids : probe_token_ids) {
    for (const int32_t doc : token_index_.DocumentsSharingToken(ids)) {
      const int32_t g = record_group_[static_cast<size_t>(doc)];
      if (!group_alive_[static_cast<size_t>(g)]) continue;
      groups.push_back(g);
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

CorpusSnapshot::QueryResult CorpusSnapshot::LinkQuery(
    const GroupArrival& group, const QueryOptions& options) const {
  GL_CHECK_EQ(seal_, kSealed) << "LinkQuery on an unsealed snapshot";
  GL_CHECK(!group.record_texts.empty()) << "groups must have records";

  QueryResult result;
  result.epoch = epoch_;

  // Probe preparation mirrors the arrival path (AddGroups phases A-C) on
  // the frozen epoch: tokenize, map tokens into the index id space for
  // candidate generation, vectorize against the epoch vocabulary. Tokens
  // the index has never seen cannot match any posting (an arrival would
  // have absorbed them with empty postings), so dropping them here yields
  // the identical candidate set.
  const size_t probe_size = group.record_texts.size();
  std::vector<std::vector<int32_t>> probe_ids(probe_size);
  std::vector<SparseVector> probe_vectors(probe_size);
  const TfIdfVectorizer vectorizer(&epoch_vocab_);
  for (size_t i = 0; i < probe_size; ++i) {
    const std::vector<std::string> raw = Tokenize(group.record_texts[i]);
    const std::vector<std::string> set = ToTokenSet(raw);
    for (const std::string& token : set) {
      const int32_t id = index_vocab_.GetId(token);
      if (id != Vocabulary::kUnknownToken) probe_ids[i].push_back(id);
      if (epoch_vocab_.GetId(token) == Vocabulary::kUnknownToken) {
        ++result.oov_tokens;
      }
    }
    std::sort(probe_ids[i].begin(), probe_ids[i].end());
    probe_vectors[i] = vectorizer.Vectorize(raw);
  }

  ExecutionContext ctx;
  if (options.deadline_ms > 0.0) ctx.SetDeadline(options.deadline_ms);
  ctx.SetCancellation(options.cancellation);
  ctx.SetMaxCandidatePairs(options.max_candidate_pairs);
  ctx.SetMaxMatcherCost(options.max_matcher_cost);

  std::vector<int32_t> candidates = CandidateGroupsForProbe(probe_ids);
  const size_t cap = ctx.EffectiveCandidateCap(candidates.size());
  if (cap < candidates.size()) {
    candidates.resize(cap);
    ctx.NoteDegraded();
  }
  result.candidates = candidates.size();

  FilterRefineConfig fr_config;
  fr_config.theta = config_.theta;
  fr_config.group_threshold = config_.group_threshold;
  fr_config.use_upper_bound_filter =
      config_.use_filter_refine && config_.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      config_.use_filter_refine && config_.use_lower_bound_accept;

  const int32_t size_right = static_cast<int32_t>(probe_size);
  for (const int32_t g : candidates) {
    if (ctx.StopRequested()) {
      ctx.NoteDegraded();
      break;
    }
    // The corpus group is the left side, the probe the right — the same
    // orientation as the arrival path's DecideLink(other, new_group).
    const std::vector<int32_t>& left = group_records_[static_cast<size_t>(g)];
    const int32_t size_left = static_cast<int32_t>(left.size());
    BipartiteGraph graph(size_left, size_right);
    for (size_t i = 0; i < left.size(); ++i) {
      const SparseVector& corpus_vector =
          record_vectors_[static_cast<size_t>(left[i])];
      for (size_t j = 0; j < probe_size; ++j) {
        const double s =
            PrenormalizedCosineSimilarity(corpus_vector, probe_vectors[j]);
        if (s >= config_.theta) {
          graph.AddEdge(static_cast<int32_t>(i), static_cast<int32_t>(j), s);
        }
      }
    }
    if (DecideGraphLinked(graph, size_left, size_right, fr_config, &ctx)) {
      result.linked_to.push_back(g);
    }
  }
  result.degraded = ctx.degraded();
  return result;
}

bool CorpusSnapshot::CheckConsistency() const {
  if (seal_ != kSealed) return false;
  const size_t n_records = record_vectors_.size();
  const size_t n_groups = group_records_.size();
  if (record_group_.size() != n_records) return false;
  if (record_token_ids_.size() != n_records) return false;
  // The index is a per-record document index: ids align with record ids.
  if (static_cast<size_t>(token_index_.num_documents()) != n_records) return false;
  if (group_labels_.size() != n_groups) return false;
  if (group_alive_.size() != n_groups) return false;
  if (cluster_labels_.size() != n_groups) return false;
  int32_t alive = 0;
  for (const char a : group_alive_) alive += a != 0 ? 1 : 0;
  if (alive != num_alive_groups_) return false;
  for (const int32_t g : record_group_) {
    if (g < 0 || static_cast<size_t>(g) >= n_groups) return false;
  }
  std::pair<int32_t, int32_t> prev{-1, -1};
  for (const auto& pair : linked_pairs_) {
    if (pair.first >= pair.second) return false;
    if (pair <= prev) return false;  // Sorted, no duplicates.
    if (!IsAlive(pair.first) || !IsAlive(pair.second)) return false;
    prev = pair;
  }
  return true;
}

}  // namespace grouplink
