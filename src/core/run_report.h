#ifndef GROUPLINK_CORE_RUN_REPORT_H_
#define GROUPLINK_CORE_RUN_REPORT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/edge_join.h"
#include "core/filter_refine.h"
#include "index/candidates.h"

namespace grouplink {

class JsonWriter;

/// Unified run-statistics API. One LinkageEngine::Run produces one
/// RunReport: a row of run-level facts (strategy, measure, thread count,
/// dataset size, links, clusters) plus an ordered list of StageStats —
/// one entry per pipeline stage — each carrying that stage's wall time
/// and named counters. The report replaces the old LinkageResult sprawl
/// of candidate_stats / score_stats / edge_join_stats / seconds_*; those
/// survive as deprecated accessors reconstructed from the stages here.
///
/// Stage vocabulary (see DESIGN.md "Observability" for the full catalog):
///   per-pair pipeline:  prepare, candidates, score, cluster
///   edge-join pipeline: prepare, join, bucket, score, cluster
///
/// Everything serializes through one ToJson(), and benches aggregate
/// whole experiments with ExperimentReportJson(), so every BENCH_*.json
/// shares a single schema ("grouplink.metrics.v1").

/// One pipeline stage: wall time plus named counters and sub-phase
/// timings, in insertion order.
struct StageStats {
  std::string name;
  double seconds = 0.0;
  std::vector<std::pair<std::string, int64_t>> counters;
  /// Sub-phase wall times (e.g. score -> graphs/bounds/refine).
  std::vector<std::pair<std::string, double>> timings;

  /// Value of counter `key`, or 0 when absent.
  int64_t Counter(std::string_view key) const;
  /// Value of timing `key`, or 0.0 when absent.
  double Timing(std::string_view key) const;
  /// Appends (or overwrites an existing) counter / timing.
  StageStats& AddCounter(std::string_view key, int64_t value);
  StageStats& AddTiming(std::string_view key, double value);
};

/// Full statistics of one linkage run.
struct RunReport {
  /// "per-pair" or "edge-join".
  std::string strategy;
  /// CandidateMethodName(...) for the per-pair pipeline, "edge-join" for
  /// the global join (which replaces candidate generation).
  std::string candidate_method;
  /// GroupMeasureKindName(...).
  std::string measure;
  /// SimdLevelName(ActiveSimdLevel()) at run time — which kernel tier
  /// ("scalar", "sse4.2", "avx2") scored this run. Informational only:
  /// the dispatch contract makes every tier produce the same links.
  std::string kernel;
  int32_t threads = 1;
  int64_t records = 0;
  int64_t groups = 0;
  int64_t links = 0;
  int64_t clusters = 0;
  /// True when any stage shed work (deadline, cancellation, budget trip,
  /// or injected fault). A degraded run's links are a subset of the
  /// unconstrained run's — never a superset (see DESIGN.md §8).
  bool degraded = false;
  /// First stop cause ("cancelled", "deadline", "fault-injected"), empty
  /// when the run completed without a stop request.
  std::string stop_reason;
  /// Pipeline stages in execution order.
  std::vector<StageStats> stages;
  /// Experiment-attached numbers outside the engine's knowledge
  /// (precision, recall, f1, ...). Benches fill these.
  std::vector<std::pair<std::string, double>> extra;

  /// Get-or-create the stage named `name` (appended at the back when new).
  /// A non-zero `seconds` sets the stage time; the default 0 leaves any
  /// previously recorded time untouched, so pure lookups are safe.
  StageStats& AddStage(std::string_view name, double seconds = 0.0);
  const StageStats* FindStage(std::string_view name) const;
  StageStats* MutableStage(std::string_view name);
  /// Stage wall time, or 0.0 when the stage is absent.
  double StageSeconds(std::string_view name) const;
  /// Counter `key` of stage `name`, or 0 when either is absent.
  int64_t StageCounter(std::string_view name, std::string_view key) const;
  /// Sum of all stage wall times.
  double TotalSeconds() const;
  void AddExtra(std::string_view key, double value);

  /// Emits this run as one JSON object:
  ///   {"strategy", "candidate_method", "measure", "threads", "records",
  ///    "groups", "links", "clusters", "degraded", "stop_reason",
  ///    "seconds_total",
  ///    "stages": [{"stage", "seconds", "counters": {...},
  ///                "timings": {...}}, ...],
  ///    "extra": {...}}
  void WriteJson(JsonWriter* json) const;
  std::string ToJson(int indent = 2) const;
};

/// Stage builders from the legacy per-subsystem stat structs (the engine
/// uses these to fill reports; benches never need them directly).
StageStats CandidatesStageFromStats(const GroupCandidateStats& stats,
                                    double seconds);
StageStats ScoreStageFromStats(const FilterRefineStats& stats, double seconds);
/// Appends the edge-join pipeline's join/bucket/score stages.
void AppendEdgeJoinStages(const EdgeJoinStats& stats, RunReport* report);

/// The unified experiment file emitted by every bench and consumed by CI:
///   {"schema": "grouplink.metrics.v1",
///    "experiment": <name>,
///    "hardware_threads": <DefaultThreadCount()>,
///    "runs": [<RunReport::WriteJson objects>...],
///    "metrics": <MetricsRegistry::Default() snapshot>}
[[nodiscard]] std::string ExperimentReportJson(std::string_view experiment,
                                 const std::vector<RunReport>& runs,
                                 int indent = 2);

}  // namespace grouplink

#endif  // GROUPLINK_CORE_RUN_REPORT_H_
