#include "core/run_report.h"

#include "common/json.h"
#include "common/metrics.h"
#include "common/thread_pool.h"

namespace grouplink {

int64_t StageStats::Counter(std::string_view key) const {
  for (const auto& [entry_name, value] : counters) {
    if (entry_name == key) return value;
  }
  return 0;
}

double StageStats::Timing(std::string_view key) const {
  for (const auto& [entry_name, value] : timings) {
    if (entry_name == key) return value;
  }
  return 0.0;
}

StageStats& StageStats::AddCounter(std::string_view key, int64_t value) {
  for (auto& [entry_name, existing] : counters) {
    if (entry_name == key) {
      existing = value;
      return *this;
    }
  }
  counters.emplace_back(std::string(key), value);
  return *this;
}

StageStats& StageStats::AddTiming(std::string_view key, double value) {
  for (auto& [entry_name, existing] : timings) {
    if (entry_name == key) {
      existing = value;
      return *this;
    }
  }
  timings.emplace_back(std::string(key), value);
  return *this;
}

StageStats& RunReport::AddStage(std::string_view name, double seconds) {
  if (StageStats* stage = MutableStage(name)) {
    // Get-or-create: a lookup with the default seconds must not clobber a
    // previously recorded time.
    if (seconds != 0.0) stage->seconds = seconds;
    return *stage;
  }
  StageStats stage;
  stage.name = std::string(name);
  stage.seconds = seconds;
  stages.push_back(std::move(stage));
  return stages.back();
}

const StageStats* RunReport::FindStage(std::string_view name) const {
  for (const StageStats& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

StageStats* RunReport::MutableStage(std::string_view name) {
  for (StageStats& stage : stages) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

double RunReport::StageSeconds(std::string_view name) const {
  const StageStats* stage = FindStage(name);
  return stage == nullptr ? 0.0 : stage->seconds;
}

int64_t RunReport::StageCounter(std::string_view name, std::string_view key) const {
  const StageStats* stage = FindStage(name);
  return stage == nullptr ? 0 : stage->Counter(key);
}

double RunReport::TotalSeconds() const {
  double total = 0.0;
  for (const StageStats& stage : stages) total += stage.seconds;
  return total;
}

void RunReport::AddExtra(std::string_view key, double value) {
  for (auto& [name, existing] : extra) {
    if (name == key) {
      existing = value;
      return;
    }
  }
  extra.emplace_back(std::string(key), value);
}

void RunReport::WriteJson(JsonWriter* json_ptr) const {
  JsonWriter& json = *json_ptr;
  json.BeginObject();
  json.Field("strategy", strategy);
  json.Field("candidate_method", candidate_method);
  json.Field("measure", measure);
  json.Field("kernel", kernel);
  json.Field("threads", static_cast<int64_t>(threads));
  json.Field("records", records);
  json.Field("groups", groups);
  json.Field("links", links);
  json.Field("clusters", clusters);
  json.Field("degraded", degraded);
  json.Field("stop_reason", stop_reason);
  json.Field("seconds_total", TotalSeconds());
  json.Key("stages");
  json.BeginArray();
  for (const StageStats& stage : stages) {
    json.BeginObject();
    json.Field("stage", stage.name);
    json.Field("seconds", stage.seconds);
    json.Key("counters");
    json.BeginObject();
    for (const auto& [key, value] : stage.counters) json.Field(key, value);
    json.EndObject();
    json.Key("timings");
    json.BeginObject();
    for (const auto& [key, value] : stage.timings) json.Field(key, value);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Key("extra");
  json.BeginObject();
  for (const auto& [key, value] : extra) json.Field(key, value);
  json.EndObject();
  json.EndObject();
}

std::string RunReport::ToJson(int indent) const {
  JsonWriter json(indent);
  WriteJson(&json);
  return json.str();
}

StageStats CandidatesStageFromStats(const GroupCandidateStats& stats,
                                    double seconds) {
  StageStats stage;
  stage.name = "candidates";
  stage.seconds = seconds;
  stage.AddCounter("record_pairs", static_cast<int64_t>(stats.record_pairs));
  stage.AddCounter("group_pairs", static_cast<int64_t>(stats.group_pairs));
  return stage;
}

StageStats ScoreStageFromStats(const FilterRefineStats& stats, double seconds) {
  StageStats stage;
  stage.name = "score";
  stage.seconds = seconds;
  stage.AddCounter("candidates", static_cast<int64_t>(stats.candidates));
  stage.AddCounter("empty_graphs", static_cast<int64_t>(stats.empty_graphs));
  stage.AddCounter("ub_pruned", static_cast<int64_t>(stats.pruned_by_upper_bound));
  stage.AddCounter("lb_accepted",
                   static_cast<int64_t>(stats.accepted_by_lower_bound));
  stage.AddCounter("refined", static_cast<int64_t>(stats.refined));
  stage.AddCounter("linked", static_cast<int64_t>(stats.linked));
  // Shed-work counters appear only on degraded runs, so the classic
  // candidates == empty + ub_pruned + lb_accepted + refined identity (and
  // the exact JSON shape) of unconstrained runs is untouched.
  if (stats.shed_candidates > 0) {
    stage.AddCounter("shed_candidates", static_cast<int64_t>(stats.shed_candidates));
  }
  if (stats.degraded_refines > 0) {
    stage.AddCounter("degraded_refines",
                     static_cast<int64_t>(stats.degraded_refines));
  }
  if (stats.skipped > 0) {
    stage.AddCounter("skipped", static_cast<int64_t>(stats.skipped));
  }
  stage.AddTiming("graphs", stats.seconds_graphs);
  stage.AddTiming("bounds", stats.seconds_bounds);
  stage.AddTiming("refine", stats.seconds_refine);
  return stage;
}

void AppendEdgeJoinStages(const EdgeJoinStats& stats, RunReport* report) {
  StageStats& join = report->AddStage("join", stats.seconds_join);
  join.AddCounter("record_candidates",
                  static_cast<int64_t>(stats.record_candidates));
  join.AddCounter("edges", static_cast<int64_t>(stats.edges));
  join.AddCounter("threads_used", static_cast<int64_t>(stats.threads_used));
  if (stats.probes_skipped > 0) {
    join.AddCounter("probes_skipped", static_cast<int64_t>(stats.probes_skipped));
  }
  join.AddCounter("verify_batches", static_cast<int64_t>(stats.verify_batches));
  join.AddTiming("verify", stats.seconds_verify);

  StageStats& bucket = report->AddStage("bucket", stats.seconds_bucket);
  bucket.AddCounter("group_pairs", static_cast<int64_t>(stats.group_pairs));

  StageStats& score = report->AddStage("score", stats.seconds_score);
  score.AddCounter("group_pairs", static_cast<int64_t>(stats.group_pairs));
  score.AddCounter("ub_pruned", static_cast<int64_t>(stats.pruned_by_upper_bound));
  score.AddCounter("lb_accepted",
                   static_cast<int64_t>(stats.accepted_by_lower_bound));
  score.AddCounter("refined", static_cast<int64_t>(stats.refined));
  score.AddCounter("linked", static_cast<int64_t>(stats.linked));
  if (stats.shed_candidates > 0) {
    score.AddCounter("shed_candidates", static_cast<int64_t>(stats.shed_candidates));
  }
  if (stats.degraded_refines > 0) {
    score.AddCounter("degraded_refines",
                     static_cast<int64_t>(stats.degraded_refines));
  }
  if (stats.skipped > 0) {
    score.AddCounter("skipped", static_cast<int64_t>(stats.skipped));
  }
}

std::string ExperimentReportJson(std::string_view experiment,
                                 const std::vector<RunReport>& runs, int indent) {
  JsonWriter json(indent);
  json.BeginObject();
  json.Field("schema", "grouplink.metrics.v1");
  json.Field("experiment", experiment);
  json.Field("hardware_threads", static_cast<int64_t>(DefaultThreadCount()));
  json.Key("runs");
  json.BeginArray();
  for (const RunReport& run : runs) run.WriteJson(&json);
  json.EndArray();
  json.Key("metrics");
  MetricsRegistry::Default().Snapshot().WriteJson(&json);
  json.EndObject();
  return json.str();
}

}  // namespace grouplink
