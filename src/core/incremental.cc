#include "core/incremental.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "common/trace.h"
#include "core/snapshot.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

struct IncrementalMetrics {
  Counter& groups_added;
  Counter& batches;
  Counter& candidates_scored;
  Counter& links;
  Counter& refreshes;
  Counter& refresh_rescored_pairs;
  Counter& removals;
  Counter& merges;
  Counter& oov_tokens;
  Counter& degraded_arrivals;
  Gauge& oov_ratio;
  Histogram& candidates_per_arrival;
  Histogram& arrival_seconds;
  Histogram& refresh_seconds;

  static IncrementalMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static IncrementalMetrics metrics{
        registry.CounterRef("incremental.groups_added"),
        registry.CounterRef("incremental.batches"),
        registry.CounterRef("incremental.candidates_scored"),
        registry.CounterRef("incremental.links"),
        registry.CounterRef("incremental.refreshes"),
        registry.CounterRef("incremental.refresh_rescored_pairs"),
        registry.CounterRef("incremental.removals"),
        registry.CounterRef("incremental.merges"),
        registry.CounterRef("incremental.oov_tokens"),
        registry.CounterRef("incremental.degraded_arrivals"),
        registry.GaugeRef("incremental.oov_ratio"),
        registry.HistogramRef("incremental.candidates_per_arrival",
                              {0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
        registry.HistogramRef("incremental.arrival_seconds"),
        registry.HistogramRef("incremental.refresh_seconds")};
    return metrics;
  }
};

}  // namespace

Status StreamingConfig::Validate() const {
  if (refresh_every_n_groups < 0) {
    return Status::InvalidArgument("refresh_every_n_groups must be >= 0");
  }
  if (refresh_on_oov_ratio < 0.0 || refresh_on_oov_ratio > 1.0) {
    return Status::InvalidArgument("refresh_on_oov_ratio must be in [0, 1]");
  }
  return Status::Ok();
}

Status ValidateStreamingConfigs(const LinkageConfig& config,
                                const StreamingConfig& streaming) {
  if (Status s = config.Validate(); !s.ok()) {
    return Status::InvalidArgument("LinkageConfig: " + s.message());
  }
  if (Status s = streaming.Validate(); !s.ok()) {
    return Status::InvalidArgument("StreamingConfig: " + s.message());
  }
  return Status::Ok();
}

Result<IncrementalLinker> IncrementalLinker::Create(
    const Dataset& seed, const LinkageConfig& config,
    const StreamingConfig& streaming) {
  // Validate through the unified entry point first so Create's error
  // messages name the offending struct; Initialize re-validates the
  // pieces (harmless) and handles the dataset checks.
  GL_RETURN_IF_ERROR(ValidateStreamingConfigs(config, streaming));
  IncrementalLinker linker(config, streaming);
  GL_RETURN_IF_ERROR(linker.Initialize(seed));
  return linker;
}

std::unique_ptr<IncrementalLinker> IncrementalLinker::Clone() const {
  // Deep copy of every piece of linker state. The thread pool is the one
  // deliberate exception: pools are not copyable, and the clone lazily
  // builds its own on first parallel use — so clone and original can run
  // on different threads with zero shared mutable state.
  auto clone = std::make_unique<IncrementalLinker>(config_, streaming_);
  clone->initialized_ = initialized_;
  clone->record_raw_tokens_ = record_raw_tokens_;
  clone->record_token_sets_ = record_token_sets_;
  clone->record_vectors_ = record_vectors_;
  clone->record_group_ = record_group_;
  clone->record_alive_ = record_alive_;
  clone->group_records_ = group_records_;
  clone->group_labels_ = group_labels_;
  clone->group_alive_ = group_alive_;
  clone->num_alive_groups_ = num_alive_groups_;
  clone->index_vocab_ = index_vocab_;
  clone->token_index_ = token_index_;
  clone->epoch_vocab_ = epoch_vocab_;
  clone->linked_pairs_ = linked_pairs_;
  clone->clusters_ = clusters_;
  clone->epoch_ = epoch_;
  clone->groups_since_refresh_ = groups_since_refresh_;
  clone->oov_since_refresh_ = oov_since_refresh_;
  clone->tokens_since_refresh_ = tokens_since_refresh_;
  return clone;
}

Result<std::unique_ptr<IncrementalLinker>> IncrementalLinker::FromSnapshot(
    const CorpusSnapshot& snapshot, const StreamingConfig& streaming) {
  GL_RETURN_IF_ERROR(
      ValidateStreamingConfigs(snapshot.engine_config(), streaming));
  GL_CHECK(snapshot.CheckConsistency())
      << "FromSnapshot requires a sealed, consistent snapshot";
  // The snapshot's config is already normalized (it came off a linker);
  // the constructor's normalization is idempotent on it.
  auto linker = std::make_unique<IncrementalLinker>(snapshot.engine_config(),
                                                    streaming);
  const Vocabulary& vocab = snapshot.index_vocab();
  const size_t n = snapshot.record_token_ids().size();
  linker->record_raw_tokens_.resize(n);
  linker->record_token_sets_.resize(n);
  for (size_t r = 0; r < n; ++r) {
    // Token strings come back from the dictionary; tombstoned records
    // persisted empty occurrence lists, so they rebuild with the cleared
    // raw tokens and token sets RemoveGroup leaves behind.
    const std::vector<int32_t>& ids = snapshot.record_token_ids()[r];
    std::vector<std::string>& raw = linker->record_raw_tokens_[r];
    raw.reserve(ids.size());
    for (const int32_t id : ids) raw.push_back(vocab.TokenOf(id));
    linker->record_token_sets_[r] = ToTokenSet(raw);
  }
  linker->record_vectors_ = snapshot.record_vectors();
  linker->record_group_ = snapshot.record_group();
  linker->record_alive_.resize(n);
  for (size_t r = 0; r < n; ++r) {
    linker->record_alive_[r] =
        snapshot.token_index().IsRemoved(static_cast<int32_t>(r)) ? 0 : 1;
  }
  linker->group_records_ = snapshot.group_records();
  linker->group_labels_ = snapshot.group_labels();
  linker->group_alive_ = snapshot.group_alive();
  linker->num_alive_groups_ = snapshot.num_alive_groups();
  linker->index_vocab_ = vocab;
  linker->token_index_ = snapshot.token_index();
  linker->epoch_vocab_ = snapshot.epoch_vocab();
  linker->linked_pairs_ = snapshot.linked_pairs();
  linker->epoch_ = snapshot.epoch();
  linker->initialized_ = true;
  linker->RebuildClusters();
  return linker;
}

IncrementalLinker::IncrementalLinker(const LinkageConfig& config,
                                     const StreamingConfig& streaming)
    : config_(config), streaming_(streaming) {
  // Normalize to the configuration whose batch output a refreshed linker
  // reproduces. Token blocking is the one candidate scheme the maintained
  // inverted index implements exactly, BM is the measure the arrival path
  // scores, and the global edge join has no incremental formulation.
  // Word tokens: the engine's token blocking always keys on word tokens,
  // so a q-gram index would generate different candidates.
  config_.candidates = CandidateMethod::kBlocking;
  config_.blocking = BlockingScheme::kToken;
  config_.measure = GroupMeasureKind::kBm;
  config_.representation = RecordRepresentation::kWordTokens;
  config_.use_edge_join = false;
}

ThreadPool* IncrementalLinker::pool() {
  if (pool_ == nullptr && config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(config_.num_threads));
  }
  return pool_.get();
}

std::vector<std::string> IncrementalLinker::TokenizeText(const std::string& text) const {
  return Tokenize(text);
}

double IncrementalLinker::RecordSimilarity(int32_t a, int32_t b) const {
  // Same convention (and bit-identical values) as
  // LinkageEngine::DefaultRecordSimilarity: token-less records carry no
  // co-reference evidence and score 0; everything else is the dot product
  // of the unit vectors — keeping streaming == batch link equality intact.
  return PrenormalizedCosineSimilarity(record_vectors_[static_cast<size_t>(a)],
                                       record_vectors_[static_cast<size_t>(b)]);
}

Status IncrementalLinker::Initialize(const Dataset& dataset) {
  GL_CHECK(!initialized_) << "Initialize() must be called exactly once";
  GL_TRACE_SPAN("incremental.initialize");
  GL_RETURN_IF_ERROR(dataset.Validate());
  GL_RETURN_IF_ERROR(config_.Validate());
  GL_RETURN_IF_ERROR(streaming_.Validate());

  const size_t n = dataset.records.size();
  record_raw_tokens_.resize(n);
  record_token_sets_.resize(n);
  ParallelFor(pool(), n, [&](size_t r) {
    record_raw_tokens_[r] = TokenizeText(dataset.records[r].text);
    record_token_sets_[r] = ToTokenSet(record_raw_tokens_[r]);
  });
  record_group_ = dataset.RecordToGroup();
  record_alive_.assign(n, 1);
  record_vectors_.resize(n);  // Filled by the Refresh below.

  // Index ingestion is a serial pass in record-id order: index token ids
  // depend on first-seen order, and AddDocument assigns doc id == record
  // id by appending.
  for (size_t r = 0; r < n; ++r) {
    std::vector<int32_t> ids;
    ids.reserve(record_token_sets_[r].size());
    for (const std::string& token : record_token_sets_[r]) {
      ids.push_back(index_vocab_.GetOrInsertId(token));
    }
    std::sort(ids.begin(), ids.end());
    const int32_t doc = token_index_.AddDocument(std::move(ids));
    GL_CHECK_EQ(static_cast<size_t>(doc), r);
  }

  const size_t num_seed_groups = dataset.groups.size();
  group_records_.reserve(num_seed_groups);
  group_labels_.reserve(num_seed_groups);
  for (const Group& group : dataset.groups) {
    group_records_.push_back(group.record_ids);
    group_labels_.push_back(group.label);
  }
  group_alive_.assign(num_seed_groups, 1);
  num_alive_groups_ = static_cast<int32_t>(num_seed_groups);

  initialized_ = true;
  Refresh();  // Builds epoch statistics, vectors, and the seed link set.
  return Status::Ok();
}

IncrementalLinker::AddResult IncrementalLinker::AddGroup(
    const std::string& label, const std::vector<std::string>& record_texts) {
  std::vector<AddResult> results = AddGroups({{label, record_texts}});
  return std::move(results.front());
}

std::vector<IncrementalLinker::AddResult> IncrementalLinker::AddGroups(
    const std::vector<GroupArrival>& batch) {
  GL_CHECK(initialized_) << "call Initialize() before AddGroups()";
  if (batch.empty()) return {};
  GL_TRACE_SPAN("incremental.add_batch");
  WallTimer timer;
  auto& metrics = IncrementalMetrics::Get();

  // Arrival scoring is frozen to one epoch: nothing below may advance it
  // until the explicit policy-triggered Refresh at the end.
  [[maybe_unused]] const int64_t arrival_epoch = epoch_;

  const size_t batch_size = batch.size();
  size_t batch_records = 0;
  for (const GroupArrival& arrival : batch) {
    GL_CHECK(!arrival.record_texts.empty()) << "groups must have records";
    batch_records += arrival.record_texts.size();
  }

  // Phase A (parallel, pure): tokenize every arriving record into
  // per-record slots; nothing here depends on ids.
  std::vector<std::vector<std::vector<std::string>>> raw(batch_size);
  std::vector<std::vector<std::vector<std::string>>> sets(batch_size);
  {
    std::vector<std::pair<size_t, size_t>> flat;  // (arrival, record)
    flat.reserve(batch_records);
    for (size_t k = 0; k < batch_size; ++k) {
      raw[k].resize(batch[k].record_texts.size());
      sets[k].resize(batch[k].record_texts.size());
      for (size_t i = 0; i < batch[k].record_texts.size(); ++i) flat.emplace_back(k, i);
    }
    ParallelFor(pool(), flat.size(), [&](size_t f) {
      const auto [k, i] = flat[f];
      raw[k][i] = TokenizeText(batch[k].record_texts[i]);
      sets[k][i] = ToTokenSet(raw[k][i]);
    });
  }

  // Phase B (serial, batch order): assign group/record ids, register
  // records in the live index (absorbing new tokens immediately), count
  // OOV against the epoch vocabulary. Everything id-dependent happens
  // here, so the outcome is fixed by arrival order alone — never by
  // thread scheduling.
  std::vector<AddResult> results(batch_size);
  std::vector<int32_t> first_record(batch_size);
  const int32_t base_group = num_groups();
  for (size_t k = 0; k < batch_size; ++k) {
    const int32_t group = base_group + static_cast<int32_t>(k);
    results[k].group_index = group;
    first_record[k] = static_cast<int32_t>(record_raw_tokens_.size());
    std::vector<int32_t> records;
    records.reserve(raw[k].size());
    for (size_t i = 0; i < raw[k].size(); ++i) {
      const int32_t r = static_cast<int32_t>(record_raw_tokens_.size());
      std::vector<int32_t> ids;
      ids.reserve(sets[k][i].size());
      for (const std::string& token : sets[k][i]) {
        ids.push_back(index_vocab_.GetOrInsertId(token));
        ++tokens_since_refresh_;
        if (epoch_vocab_.GetId(token) == Vocabulary::kUnknownToken) {
          ++oov_since_refresh_;
          ++results[k].oov_tokens;
        }
      }
      std::sort(ids.begin(), ids.end());
      const int32_t doc = token_index_.AddDocument(std::move(ids));
      GL_CHECK_EQ(doc, r);
      record_raw_tokens_.push_back(std::move(raw[k][i]));
      record_token_sets_.push_back(std::move(sets[k][i]));
      record_group_.push_back(group);
      record_alive_.push_back(1);
      records.push_back(r);
    }
    group_records_.push_back(std::move(records));
    group_labels_.push_back(batch[k].label);
    group_alive_.push_back(1);
    ++num_alive_groups_;
    GL_CHECK_EQ(clusters_.AddElement(), static_cast<size_t>(group));
    metrics.oov_tokens.Increment(static_cast<uint64_t>(results[k].oov_tokens));
  }
  groups_since_refresh_ += static_cast<int32_t>(batch_size);
  metrics.groups_added.Increment(batch_size);
  metrics.batches.Increment();

  // Phase C (parallel, pure): vectorize the new records against the
  // frozen epoch statistics.
  record_vectors_.resize(record_raw_tokens_.size());
  {
    const TfIdfVectorizer vectorizer(&epoch_vocab_);
    const size_t first = static_cast<size_t>(first_record[0]);
    ParallelFor(pool(), record_raw_tokens_.size() - first, [&](size_t i) {
      const size_t r = first + i;
      record_vectors_[r] = vectorizer.Vectorize(record_raw_tokens_[r]);
    });
  }

  // Phase D (parallel, pure): each arrival generates its candidates from
  // the index and decides links into its own slot. The record-id cutoff
  // (this arrival's first record) restricts candidates to the prior
  // corpus plus *earlier* batch arrivals, so every cross-arrival pair is
  // scored exactly once — by the later group — and the batch result
  // matches adding the groups one at a time.
  //
  // This is the one phase the batch's ExecutionContext governs: phases
  // A-C are unconditional (skipping them would leave the index or the
  // vectors inconsistent), while a skipped scoring pass only costs links
  // — which the next Refresh() recovers.
  ExecutionContext ctx;
  if (config_.deadline_ms > 0.0) ctx.SetDeadline(config_.deadline_ms);
  ctx.SetCancellation(config_.cancellation);
  ctx.SetMaxCandidatePairs(config_.max_candidate_pairs);
  ctx.SetMaxMatcherCost(config_.max_matcher_cost);
  std::vector<std::vector<int32_t>> linked(batch_size);
  std::vector<char> scored(batch_size, 0);
  ParallelFor(
      pool(), batch_size,
      [&](size_t k) {
        const int32_t group = results[k].group_index;
        std::vector<int32_t> candidates = CandidateGroups(
            group_records_[static_cast<size_t>(group)], first_record[k], group);
        // Candidate budget: truncate the (sorted, hence deterministic)
        // candidate list tail.
        const size_t cap = ctx.EffectiveCandidateCap(candidates.size());
        if (cap < candidates.size()) {
          candidates.resize(cap);
          results[k].degraded = true;
          ctx.NoteDegraded();
        }
        results[k].candidates = candidates.size();
        for (const int32_t other : candidates) {
          if (ctx.StopRequested()) {
            results[k].degraded = true;
            break;
          }
          // `other` always precedes `group`, so it is the left (smaller) side.
          if (DecideLink(other, group, &ctx)) linked[k].push_back(other);
        }
        scored[k] = 1;
      },
      &ctx);
  // Arrivals whose scoring pass never ran (stop request or injected task
  // failure) contribute no links; their group state is already complete.
  for (size_t k = 0; k < batch_size; ++k) {
    if (!scored[k]) {
      results[k].degraded = true;
      ctx.NoteDegraded();
    }
  }

  // Phase E (serial, batch order): merge links, maintain the sorted
  // linked-pairs invariant and the incremental union-find.
  const size_t old_size = linked_pairs_.size();
  size_t scored_candidates = 0;
  size_t degraded_arrivals = 0;
  for (size_t k = 0; k < batch_size; ++k) {
    scored_candidates += results[k].candidates;
    if (results[k].degraded) ++degraded_arrivals;
    metrics.candidates_per_arrival.Observe(static_cast<double>(results[k].candidates));
    for (const int32_t other : linked[k]) {
      linked_pairs_.emplace_back(other, results[k].group_index);
      clusters_.Union(static_cast<size_t>(other),
                      static_cast<size_t>(results[k].group_index));
    }
    results[k].linked_to = std::move(linked[k]);
  }
  std::sort(linked_pairs_.begin() + static_cast<ptrdiff_t>(old_size),
            linked_pairs_.end());
  std::inplace_merge(linked_pairs_.begin(),
                     linked_pairs_.begin() + static_cast<ptrdiff_t>(old_size),
                     linked_pairs_.end());
  metrics.candidates_scored.Increment(scored_candidates);
  metrics.links.Increment(linked_pairs_.size() - old_size);
  if (degraded_arrivals > 0) {
    metrics.degraded_arrivals.Increment(degraded_arrivals);
    TagCurrentSpan("degraded_arrivals", std::to_string(degraded_arrivals));
  }
  metrics.oov_ratio.Set(EpochOovRatio());
  metrics.arrival_seconds.Observe(timer.ElapsedSeconds());

  GL_DCHECK_EQ(epoch_, arrival_epoch);
  if (PolicyWantsRefresh()) {
    for (AddResult& result : results) result.triggered_refresh = true;
    Refresh();
    GL_DCHECK_EQ(epoch_, arrival_epoch + 1);
  }
  return results;
}

std::vector<int32_t> IncrementalLinker::CandidateGroups(
    const std::vector<int32_t>& records, int32_t record_cutoff, int32_t self) const {
  std::vector<int32_t> groups;
  for (const int32_t r : records) {
    for (const int32_t doc :
         token_index_.DocumentsSharingToken(token_index_.DocumentTokens(r))) {
      if (doc >= record_cutoff) continue;
      const int32_t g = record_group_[static_cast<size_t>(doc)];
      if (g == self || !group_alive_[static_cast<size_t>(g)]) continue;
      groups.push_back(g);
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

bool IncrementalLinker::DecideLink(int32_t g1, int32_t g2,
                                   const ExecutionContext* ctx) const {
  // Builds the θ-thresholded graph, then decides through the shared
  // DecideGraphLinked ladder (filter_refine.h) — the same decision order
  // as the engine's DecidePair, so arrival decisions agree bitwise with
  // the batch scoring of the same pair.
  const std::vector<int32_t>& left = group_records_[static_cast<size_t>(g1)];
  const std::vector<int32_t>& right = group_records_[static_cast<size_t>(g2)];
  const int32_t size_left = static_cast<int32_t>(left.size());
  const int32_t size_right = static_cast<int32_t>(right.size());
  BipartiteGraph graph(size_left, size_right);
  for (size_t i = 0; i < left.size(); ++i) {
    for (size_t j = 0; j < right.size(); ++j) {
      const double s = RecordSimilarity(left[i], right[j]);
      if (s >= config_.theta) {
        graph.AddEdge(static_cast<int32_t>(i), static_cast<int32_t>(j), s);
      }
    }
  }
  FilterRefineConfig fr_config;
  fr_config.theta = config_.theta;
  fr_config.group_threshold = config_.group_threshold;
  fr_config.use_upper_bound_filter =
      config_.use_filter_refine && config_.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      config_.use_filter_refine && config_.use_lower_bound_accept;
  return DecideGraphLinked(graph, size_left, size_right, fr_config, ctx);
}

void IncrementalLinker::RemoveGroup(int32_t group) {
  GL_CHECK(initialized_);
  GL_CHECK(IsAlive(group)) << "RemoveGroup requires a live group";
  GL_TRACE_SPAN("incremental.remove");
  const size_t g = static_cast<size_t>(group);
  for (const int32_t r : group_records_[g]) {
    record_alive_[static_cast<size_t>(r)] = 0;
    token_index_.RemoveDocument(r);
    // Free the per-record state; dead record ids are never reused.
    record_vectors_[static_cast<size_t>(r)] = SparseVector();
    record_raw_tokens_[static_cast<size_t>(r)].clear();
    record_raw_tokens_[static_cast<size_t>(r)].shrink_to_fit();
    record_token_sets_[static_cast<size_t>(r)].clear();
    record_token_sets_[static_cast<size_t>(r)].shrink_to_fit();
  }
  group_records_[g].clear();
  group_alive_[g] = 0;
  --num_alive_groups_;
  EraseLinksInvolving(group);
  RebuildClusters();
  IncrementalMetrics::Get().removals.Increment();
}

IncrementalLinker::AddResult IncrementalLinker::MergeGroups(int32_t into,
                                                            int32_t from) {
  GL_CHECK(initialized_);
  GL_CHECK(IsAlive(into)) << "MergeGroups requires a live target group";
  GL_CHECK(IsAlive(from)) << "MergeGroups requires a live source group";
  GL_CHECK_NE(into, from);
  GL_TRACE_SPAN("incremental.merge");
  auto& metrics = IncrementalMetrics::Get();

  // The merged group is a different comparison unit than either input, so
  // its old links are discarded and it is rescored like an arrival.
  EraseLinksInvolving(into);
  EraseLinksInvolving(from);

  std::vector<int32_t>& target = group_records_[static_cast<size_t>(into)];
  std::vector<int32_t>& source = group_records_[static_cast<size_t>(from)];
  for (const int32_t r : source) record_group_[static_cast<size_t>(r)] = into;
  target.insert(target.end(), source.begin(), source.end());
  std::sort(target.begin(), target.end());
  source.clear();
  group_alive_[static_cast<size_t>(from)] = 0;  // Records stay alive and indexed.
  --num_alive_groups_;

  AddResult result;
  result.group_index = into;
  const std::vector<int32_t> candidates =
      CandidateGroups(target, static_cast<int32_t>(record_group_.size()), into);
  result.candidates = candidates.size();
  const size_t old_size = linked_pairs_.size();
  for (const int32_t other : candidates) {
    const int32_t lo = std::min(other, into);
    const int32_t hi = std::max(other, into);
    if (DecideLink(lo, hi)) {
      linked_pairs_.emplace_back(lo, hi);
      result.linked_to.push_back(other);
    }
  }
  std::sort(linked_pairs_.begin() + static_cast<ptrdiff_t>(old_size),
            linked_pairs_.end());
  std::inplace_merge(linked_pairs_.begin(),
                     linked_pairs_.begin() + static_cast<ptrdiff_t>(old_size),
                     linked_pairs_.end());
  RebuildClusters();
  metrics.merges.Increment();
  metrics.candidates_scored.Increment(result.candidates);
  metrics.links.Increment(result.linked_to.size());
  return result;
}

void IncrementalLinker::Refresh() {
  GL_CHECK(initialized_);
  GL_TRACE_SPAN("incremental.refresh");
  WallTimer timer;
  auto& metrics = IncrementalMetrics::Get();
  // Epoch contract: only Refresh advances the epoch, by exactly one —
  // arrivals between refreshes are all scored against one frozen epoch.
  [[maybe_unused]] const int64_t entry_epoch = epoch_;
  GL_DCHECK_GE(entry_epoch, 0);

  token_index_.Compact();

  // Rebuild the epoch vocabulary over live records in record-id order —
  // the exact AddDocument sequence the batch engine's Prepare issues for
  // a dataset holding these records in arrival order, so the id space
  // (and every downstream vector) is bitwise identical.
  epoch_vocab_ = Vocabulary();
  const size_t n = record_raw_tokens_.size();
  for (size_t r = 0; r < n; ++r) {
    if (record_alive_[r]) epoch_vocab_.AddDocument(record_token_sets_[r]);
  }
  // Dead records have empty token lists, so they get empty vectors.
  record_vectors_ = RecomputeVectors(epoch_vocab_, record_raw_tokens_, pool());
  GL_DCHECK_EQ(record_vectors_.size(), n);

  // Candidates from the maintained postings: live groups sharing a token.
  // Per-record neighbor lists are gathered in parallel into slots; the
  // serial concatenation + sort/unique yields the same sorted pair set as
  // the engine's token Blocker + LiftToGroupPairs.
  std::vector<std::vector<std::pair<int32_t, int32_t>>> per_record(n);
  ParallelFor(pool(), n, [&](size_t r) {
    if (!record_alive_[r]) return;
    const int32_t g2 = record_group_[r];
    for (const int32_t doc : token_index_.DocumentsSharingToken(
             token_index_.DocumentTokens(static_cast<int32_t>(r)))) {
      if (static_cast<size_t>(doc) >= r) break;  // Count each record pair once.
      const int32_t g1 = record_group_[static_cast<size_t>(doc)];
      if (g1 == g2) continue;
      per_record[r].emplace_back(std::min(g1, g2), std::max(g1, g2));
    }
  });
  std::vector<std::pair<int32_t, int32_t>> candidates;
  for (std::vector<std::pair<int32_t, int32_t>>& pairs : per_record) {
    candidates.insert(candidates.end(), pairs.begin(), pairs.end());
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // Rescore through the engine's own filter-and-refine code on a
  // group-view dataset (records are reached by id via the sim callback).
  FilterRefineConfig fr_config;
  fr_config.theta = config_.theta;
  fr_config.group_threshold = config_.group_threshold;
  fr_config.use_upper_bound_filter =
      config_.use_filter_refine && config_.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      config_.use_filter_refine && config_.use_lower_bound_accept;
  const Dataset view = GroupView();
  // Refresh gets its own context (the deadline clock restarts here): a
  // degraded refresh still leaves a consistent, subset-valid link set,
  // and with no limits and no faults armed it reproduces the batch
  // engine exactly.
  ExecutionContext ctx;
  if (config_.deadline_ms > 0.0) ctx.SetDeadline(config_.deadline_ms);
  ctx.SetCancellation(config_.cancellation);
  ctx.SetMaxCandidatePairs(config_.max_candidate_pairs);
  ctx.SetMaxMatcherCost(config_.max_matcher_cost);
  linked_pairs_ = FilterRefineLink(
      view, [this](int32_t a, int32_t b) { return RecordSimilarity(a, b); },
      candidates, fr_config, /*stats=*/nullptr, pool(), &ctx);
  RebuildClusters();

  ++epoch_;
  GL_DCHECK_EQ(epoch_, entry_epoch + 1);
  groups_since_refresh_ = 0;
  oov_since_refresh_ = 0;
  tokens_since_refresh_ = 0;
  metrics.refreshes.Increment();
  metrics.refresh_rescored_pairs.Increment(candidates.size());
  metrics.oov_ratio.Set(0.0);
  metrics.refresh_seconds.Observe(timer.ElapsedSeconds());
}

Dataset IncrementalLinker::GroupView() const {
  Dataset view;
  view.groups.resize(group_records_.size());
  for (size_t g = 0; g < group_records_.size(); ++g) {
    view.groups[g].label = group_labels_[g];
    view.groups[g].record_ids = group_records_[g];
  }
  return view;
}

void IncrementalLinker::EraseLinksInvolving(int32_t group) {
  linked_pairs_.erase(
      std::remove_if(linked_pairs_.begin(), linked_pairs_.end(),
                     [group](const std::pair<int32_t, int32_t>& pair) {
                       return pair.first == group || pair.second == group;
                     }),
      linked_pairs_.end());
}

void IncrementalLinker::RebuildClusters() {
  clusters_ = UnionFind(static_cast<size_t>(num_groups()));
  for (const auto& [g1, g2] : linked_pairs_) {
    clusters_.Union(static_cast<size_t>(g1), static_cast<size_t>(g2));
  }
}

std::vector<size_t> IncrementalLinker::ClusterLabels() const {
  return clusters_.ComponentLabels();
}

bool IncrementalLinker::IsAlive(int32_t group) const {
  return group >= 0 && group < num_groups() &&
         group_alive_[static_cast<size_t>(group)] != 0;
}

double IncrementalLinker::EpochOovRatio() const {
  if (tokens_since_refresh_ == 0) return 0.0;
  return static_cast<double>(oov_since_refresh_) /
         static_cast<double>(tokens_since_refresh_);
}

bool IncrementalLinker::PolicyWantsRefresh() const {
  if (streaming_.refresh_every_n_groups > 0 &&
      groups_since_refresh_ >= streaming_.refresh_every_n_groups) {
    return true;
  }
  if (streaming_.refresh_on_oov_ratio > 0.0 &&
      EpochOovRatio() > streaming_.refresh_on_oov_ratio) {
    return true;
  }
  return false;
}

}  // namespace grouplink
