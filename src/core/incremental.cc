#include "core/incremental.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "common/union_find.h"
#include "text/tokenizer.h"

namespace grouplink {

IncrementalLinker::IncrementalLinker(const LinkageConfig& config) : config_(config) {}

Status IncrementalLinker::Initialize(const Dataset& dataset) {
  GL_TRACE_SPAN("incremental.initialize");
  GL_CHECK(!initialized_) << "Initialize() must be called exactly once";
  GL_RETURN_IF_ERROR(dataset.Validate());

  // Batch-link the seed with the regular engine (same config), then
  // import its state wholesale.
  LinkageEngine engine(&dataset, config_);
  GL_RETURN_IF_ERROR(engine.Prepare());
  const LinkageResult seed_result = engine.Run();
  linked_pairs_ = seed_result.linked_pairs;

  // Freeze vocabulary/IDF on the seed corpus.
  const auto tokenize = [this](const std::string& text) {
    if (config_.representation == RecordRepresentation::kCharacterQGrams) {
      return CharacterQGrams(text, 3, /*lowercase=*/true, '#');
    }
    return Tokenize(text);
  };
  for (const Record& record : dataset.records) {
    vocabulary_.AddDocument(ToTokenSet(tokenize(record.text)));
  }
  initialized_ = true;

  // Ingest seed records through the same path new records will use, so
  // vectors/index/grouping are built consistently.
  group_records_.resize(static_cast<size_t>(dataset.num_groups()));
  group_labels_.resize(static_cast<size_t>(dataset.num_groups()));
  record_group_.resize(dataset.records.size());
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    group_labels_[static_cast<size_t>(g)] = dataset.groups[static_cast<size_t>(g)].label;
  }
  // Records must be added in id order so record ids line up.
  const std::vector<int32_t> seed_record_group = dataset.RecordToGroup();
  for (int32_t r = 0; r < dataset.num_records(); ++r) {
    const int32_t id = AddRecord(dataset.records[static_cast<size_t>(r)].text);
    GL_CHECK_EQ(id, r);
    const int32_t g = seed_record_group[static_cast<size_t>(r)];
    record_group_[static_cast<size_t>(r)] = g;
    group_records_[static_cast<size_t>(g)].push_back(r);
  }
  return Status::Ok();
}

int32_t IncrementalLinker::AddRecord(const std::string& text) {
  const auto tokenize = [this](const std::string& t) {
    if (config_.representation == RecordRepresentation::kCharacterQGrams) {
      return CharacterQGrams(t, 3, /*lowercase=*/true, '#');
    }
    return Tokenize(t);
  };
  // Token ids against the frozen vocabulary; OOV tokens are dropped.
  std::vector<int32_t> ids;
  for (const std::string& token : ToTokenSet(tokenize(text))) {
    const int32_t id = vocabulary_.GetId(token);
    if (id != Vocabulary::kUnknownToken) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  const TfIdfVectorizer vectorizer(&vocabulary_);
  record_vectors_.push_back(vectorizer.Vectorize(tokenize(text)));
  const int32_t record_id = token_index_.AddDocument(ids);
  record_token_ids_.push_back(std::move(ids));
  GL_CHECK_EQ(static_cast<size_t>(record_id) + 1, record_vectors_.size());
  return record_id;
}

double IncrementalLinker::RecordSimilarity(int32_t a, int32_t b) const {
  const SparseVector& va = record_vectors_[static_cast<size_t>(a)];
  const SparseVector& vb = record_vectors_[static_cast<size_t>(b)];
  if (va.empty() || vb.empty()) return 0.0;
  return CosineSimilarity(va, vb);
}

IncrementalLinker::AddResult IncrementalLinker::AddGroup(
    const std::string& label, const std::vector<std::string>& record_texts) {
  // Per-arrival span: long streams stay bounded by the Tracer's root cap.
  GL_TRACE_SPAN("incremental.add_group");
  GL_CHECK(initialized_) << "call Initialize() before AddGroup()";
  GL_CHECK(!record_texts.empty());

  const int32_t group_index = num_groups();
  std::vector<int32_t> new_records;
  // Candidate groups: any existing group sharing a token with a new record.
  std::vector<int32_t> candidate_groups;
  for (const std::string& text : record_texts) {
    const int32_t record_id = AddRecord(text);
    new_records.push_back(record_id);
    for (const int32_t other :
         token_index_.DocumentsSharingToken(
             record_token_ids_[static_cast<size_t>(record_id)])) {
      if (other >= new_records.front()) continue;  // Skip the new group itself.
      candidate_groups.push_back(record_group_[static_cast<size_t>(other)]);
    }
    record_group_.push_back(group_index);
  }
  std::sort(candidate_groups.begin(), candidate_groups.end());
  candidate_groups.erase(std::unique(candidate_groups.begin(), candidate_groups.end()),
                         candidate_groups.end());
  group_records_.push_back(new_records);
  group_labels_.push_back(label);

  AddResult result;
  result.group_index = group_index;
  result.candidates = candidate_groups.size();

  const int32_t new_size = static_cast<int32_t>(new_records.size());
  for (const int32_t other : candidate_groups) {
    const std::vector<int32_t>& other_records = group_records_[static_cast<size_t>(other)];
    const int32_t other_size = static_cast<int32_t>(other_records.size());
    BipartiteGraph graph(new_size, other_size);
    for (int32_t i = 0; i < new_size; ++i) {
      for (int32_t j = 0; j < other_size; ++j) {
        const double s = RecordSimilarity(new_records[static_cast<size_t>(i)],
                                          other_records[static_cast<size_t>(j)]);
        if (s >= config_.theta) graph.AddEdge(i, j, s);
      }
    }
    if (graph.edges().empty()) continue;

    bool decided = false;
    bool link = false;
    if (config_.use_upper_bound_filter &&
        UpperBoundMeasure(graph, new_size, other_size) < config_.group_threshold) {
      decided = true;
    }
    if (!decided && config_.use_lower_bound_accept &&
        GreedyLowerBound(graph, new_size, other_size) >= config_.group_threshold) {
      decided = true;
      link = true;
    }
    if (!decided) {
      link = BmMeasure(graph, new_size, other_size).value >= config_.group_threshold;
    }
    if (link) {
      linked_pairs_.emplace_back(other, group_index);
      result.linked_to.push_back(other);
    }
  }

  auto& registry = MetricsRegistry::Default();
  static Counter& m_groups = registry.CounterRef("incremental.groups_added");
  static Counter& m_candidates = registry.CounterRef("incremental.candidates_scored");
  static Counter& m_links = registry.CounterRef("incremental.links");
  static Histogram& m_per_arrival = registry.HistogramRef(
      "incremental.candidates_per_arrival", {0, 1, 2, 4, 8, 16, 32, 64, 128, 256});
  m_groups.Increment();
  m_candidates.Increment(result.candidates);
  m_links.Increment(result.linked_to.size());
  m_per_arrival.Observe(static_cast<double>(result.candidates));
  return result;
}

std::vector<size_t> IncrementalLinker::ClusterLabels() const {
  UnionFind clusters(static_cast<size_t>(num_groups()));
  for (const auto& [g1, g2] : linked_pairs_) {
    clusters.Union(static_cast<size_t>(g1), static_cast<size_t>(g2));
  }
  return clusters.ComponentLabels();
}

}  // namespace grouplink
