#ifndef GROUPLINK_CORE_SNAPSHOT_H_
#define GROUPLINK_CORE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/execution_context.h"
#include "common/status.h"
#include "core/incremental.h"
#include "index/inverted_index.h"
#include "text/tfidf.h"
#include "text/vocabulary.h"

namespace grouplink {

/// An immutable, self-contained freeze of one serving epoch: the corpus
/// TF-IDF vectors, the token inverted index, group membership and labels,
/// the link set, and the entity cluster labels — everything LinkQuery
/// needs, copied out of an IncrementalLinker at a refresh point and never
/// mutated again.
///
/// Concurrency contract: every method is const and touches only state
/// frozen at Capture() time, so any number of threads may query one
/// snapshot concurrently with no synchronization. Snapshots are published
/// through EpochCell<CorpusSnapshot> (common/epoch_cell.h); a retired
/// epoch stays alive until its last reader drops the shared_ptr, which is
/// the entire memory-reclamation story (DESIGN.md §11).
///
/// Query semantics: LinkQuery(G) answers "which corpus groups would G
/// link to" with the *exact* decision procedure of the streaming arrival
/// path under this epoch's frozen statistics — tokenize, vectorize
/// against the epoch vocabulary (unseen tokens drop out of the vector),
/// candidates by token blocking over the index, then the shared
/// filter-and-refine ladder (DecideGraphLinked) per candidate. So a query
/// against the epoch-k snapshot returns bit-identically the links that
/// linker.Clone()->AddGroup(G) would have produced at the capture point —
/// and at a refresh point that equals a batch LinkageEngine run over the
/// epoch corpus plus G (tested in tests/core_snapshot_test.cc).
class CorpusSnapshot {
 public:
  /// Per-query admission control, mapped onto ExecutionContext: a
  /// deadline, a cooperative cancellation token, and work budgets. Zero
  /// means "no limit" for every knob (LinkageService overlays its
  /// configured defaults on zeros). A budget-tripped or deadline-tripped
  /// query returns a valid partial answer — linked_to is a subset of the
  /// unconstrained answer — with degraded == true.
  struct QueryOptions {
    double deadline_ms = 0.0;
    int64_t max_candidate_pairs = 0;
    int64_t max_matcher_cost = 0;
    CancellationToken cancellation;
  };

  /// Answer of one LinkQuery.
  struct QueryResult {
    /// Corpus groups the probe group links to (ascending group indexes).
    std::vector<int32_t> linked_to;
    /// Epoch this query was answered at (== snapshot epoch; lets callers
    /// assert monotone epochs across a service's refreshes).
    int64_t epoch = 0;
    /// Candidate groups scored (diagnostics).
    size_t candidates = 0;
    /// Probe token occurrences unknown to the epoch vocabulary; they
    /// carry no TF-IDF weight until the next refresh absorbs them.
    size_t oov_tokens = 0;
    /// True when admission control shed work: linked_to may be missing
    /// links relative to the unconstrained query (never has extras).
    bool degraded = false;
  };

  /// Freezes `linker`'s current state into an immutable snapshot. The
  /// caller must guarantee the linker is quiescent for the duration of
  /// the call (LinkageService captures under its writer lock, or from the
  /// refresh clone that no other thread can reach). The returned pointer
  /// is independent of the linker — mutating or destroying the linker
  /// afterwards does not touch the snapshot.
  [[nodiscard]] static std::shared_ptr<const CorpusSnapshot> Capture(
      const IncrementalLinker& linker);

  CorpusSnapshot(const CorpusSnapshot&) = delete;
  CorpusSnapshot& operator=(const CorpusSnapshot&) = delete;

  /// Links `group` against the frozen corpus. Thread-safe (pure read).
  /// Empty record_texts is invalid (GL_CHECK). The options-free overload
  /// runs unconstrained (all admission-control knobs at "no limit").
  [[nodiscard]] QueryResult LinkQuery(const GroupArrival& group,
                                      const QueryOptions& options) const;
  [[nodiscard]] QueryResult LinkQuery(const GroupArrival& group) const {
    return LinkQuery(group, QueryOptions());
  }

  /// Epoch number this snapshot froze (== linker.epoch() at capture).
  int64_t epoch() const { return epoch_; }
  /// All links over live groups, (i < j) pairs sorted lexicographically —
  /// at a refresh point, bit-identical to the batch engine's link set on
  /// the epoch corpus.
  const std::vector<std::pair<int32_t, int32_t>>& linked_pairs() const {
    return linked_pairs_;
  }
  /// Entity label per group slot (transitive closure of linked_pairs).
  const std::vector<size_t>& cluster_labels() const { return cluster_labels_; }
  const std::string& label(int32_t group) const {
    return group_labels_[static_cast<size_t>(group)];
  }
  bool IsAlive(int32_t group) const {
    return group >= 0 && group < num_groups() &&
           group_alive_[static_cast<size_t>(group)] != 0;
  }
  int32_t num_groups() const {
    return static_cast<int32_t>(group_records_.size());
  }
  int32_t num_alive_groups() const { return num_alive_groups_; }
  int32_t num_records() const {
    return static_cast<int32_t>(record_vectors_.size());
  }
  /// The normalized engine configuration this snapshot scores with (same
  /// contract as IncrementalLinker::engine_config).
  const LinkageConfig& engine_config() const { return config_; }

  /// Structural self-check of the frozen state: the seal sentinel written
  /// as Capture's last step, cross-array size agreement, sorted (i < j)
  /// link pairs over live groups. Soak readers call this to prove no
  /// query ever observes a half-built epoch; any violation would mean the
  /// publication barrier broke. Cheap enough to run per query batch.
  [[nodiscard]] bool CheckConsistency() const;

  // --- Storage-tier surface (src/storage/). A snapshot is the unit of
  // --- persistence: SnapshotStore serializes these parts into the paged
  // --- store, and FromParts rebuilds a sealed snapshot on recovery.

  /// The deserialized pieces of one epoch. Field-for-field the snapshot's
  /// own frozen state; SnapshotStore::Load fills one of these from disk.
  struct Parts {
    LinkageConfig config;
    int64_t epoch = 0;
    Vocabulary index_vocab;
    InvertedIndex token_index;
    Vocabulary epoch_vocab;
    std::vector<SparseVector> record_vectors;
    std::vector<int32_t> record_group;
    std::vector<std::vector<int32_t>> record_token_ids;
    std::vector<std::vector<int32_t>> group_records;
    std::vector<std::string> group_labels;
    std::vector<char> group_alive;
    int32_t num_alive_groups = 0;
    std::vector<std::pair<int32_t, int32_t>> linked_pairs;
    std::vector<size_t> cluster_labels;
  };

  /// Rebuilds a snapshot from recovered parts, seals it, and runs
  /// CheckConsistency — a recovered epoch is either exactly as
  /// trustworthy as a captured one or rejected with Status::DataLoss.
  /// No half-built epoch can escape this factory (recovery-protocol
  /// invariant; see tests/storage_recovery_test.cc).
  [[nodiscard]] static Result<std::shared_ptr<const CorpusSnapshot>> FromParts(
      Parts parts);

  /// Read access to the frozen parts, for serialization and for the
  /// warm-restart writer rebuild (IncrementalLinker::FromSnapshot). The
  /// referenced state is immutable for the snapshot's lifetime.
  const Vocabulary& index_vocab() const { return index_vocab_; }
  const Vocabulary& epoch_vocab() const { return epoch_vocab_; }
  const InvertedIndex& token_index() const { return token_index_; }
  const std::vector<SparseVector>& record_vectors() const {
    return record_vectors_;
  }
  const std::vector<int32_t>& record_group() const { return record_group_; }
  /// Per-record raw token occurrences (index-vocabulary ids, original
  /// order, repeats preserved) — what makes a snapshot self-contained
  /// enough to rebuild the writer without the original texts. Empty for
  /// tombstoned records, like the linker's cleared raw tokens.
  const std::vector<std::vector<int32_t>>& record_token_ids() const {
    return record_token_ids_;
  }
  const std::vector<std::vector<int32_t>>& group_records() const {
    return group_records_;
  }
  const std::vector<std::string>& group_labels() const { return group_labels_; }
  const std::vector<char>& group_alive() const { return group_alive_; }

 private:
  CorpusSnapshot() = default;

  /// Candidate groups for the probe's token-id lists: live groups sharing
  /// at least one index token. Sorted ascending, deduplicated.
  std::vector<int32_t> CandidateGroupsForProbe(
      const std::vector<std::vector<int32_t>>& probe_token_ids) const;

  // All fields are written once inside Capture and frozen thereafter.
  LinkageConfig config_;
  int64_t epoch_ = 0;

  // Token index (for candidate generation) and the vocabulary that maps
  // probe tokens to its id space.
  Vocabulary index_vocab_;
  InvertedIndex token_index_;

  // Epoch TF-IDF statistics and the per-record vectors under them.
  Vocabulary epoch_vocab_;
  std::vector<SparseVector> record_vectors_;
  std::vector<int32_t> record_group_;
  // Raw token occurrences per record in index-vocab id space (see the
  // record_token_ids() accessor); carried for persistence/warm restart,
  // not consulted by LinkQuery.
  std::vector<std::vector<int32_t>> record_token_ids_;

  // Group membership, identity, and liveness.
  std::vector<std::vector<int32_t>> group_records_;
  std::vector<std::string> group_labels_;
  std::vector<char> group_alive_;
  int32_t num_alive_groups_ = 0;

  std::vector<std::pair<int32_t, int32_t>> linked_pairs_;
  std::vector<size_t> cluster_labels_;

  // Written as the very last step of Capture; every query GL_CHECKs it.
  // A reader that could ever observe a partially built snapshot would
  // see the zero-initialized value here, not the magic.
  uint64_t seal_ = 0;
  static constexpr uint64_t kSealed = 0x5ea1ed5ea1ed5eaULL;
};

}  // namespace grouplink

#endif  // GROUPLINK_CORE_SNAPSHOT_H_
