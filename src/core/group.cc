#include "core/group.h"

#include <string>

namespace grouplink {

std::vector<int32_t> Dataset::RecordToGroup() const {
  std::vector<int32_t> record_group(records.size(), -1);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const int32_t r : groups[g].record_ids) {
      record_group[static_cast<size_t>(r)] = static_cast<int32_t>(g);
    }
  }
  return record_group;
}

Status Dataset::Validate() const {
  std::vector<int32_t> seen(records.size(), 0);
  for (size_t g = 0; g < groups.size(); ++g) {
    if (groups[g].record_ids.empty()) {
      return Status::InvalidArgument("group " + std::to_string(g) + " is empty");
    }
    for (const int32_t r : groups[g].record_ids) {
      if (r < 0 || r >= num_records()) {
        return Status::OutOfRange("group " + std::to_string(g) +
                                  " references record " + std::to_string(r));
      }
      if (++seen[static_cast<size_t>(r)] > 1) {
        return Status::InvalidArgument("record " + std::to_string(r) +
                                       " belongs to multiple groups");
      }
    }
  }
  for (size_t r = 0; r < seen.size(); ++r) {
    if (seen[r] == 0) {
      return Status::InvalidArgument("record " + std::to_string(r) +
                                     " belongs to no group");
    }
  }
  if (!group_entities.empty() && group_entities.size() != groups.size()) {
    return Status::InvalidArgument("group_entities size mismatch");
  }
  return Status::Ok();
}

std::vector<std::pair<int32_t, int32_t>> Dataset::TruePairs() const {
  std::vector<std::pair<int32_t, int32_t>> pairs;
  if (group_entities.empty()) return pairs;
  for (int32_t i = 0; i < num_groups(); ++i) {
    const int32_t entity_i = group_entities[static_cast<size_t>(i)];
    if (entity_i == kUnknownEntity) continue;
    for (int32_t j = i + 1; j < num_groups(); ++j) {
      if (group_entities[static_cast<size_t>(j)] == entity_i) {
        pairs.emplace_back(i, j);
      }
    }
  }
  return pairs;
}

Result<Dataset> MakeDataset(std::vector<Record> records,
                            std::vector<int32_t> record_group, int32_t num_groups,
                            std::vector<int32_t> group_entities) {
  if (records.size() != record_group.size()) {
    return Status::InvalidArgument("records / record_group size mismatch");
  }
  Dataset dataset;
  dataset.records = std::move(records);
  dataset.groups.resize(static_cast<size_t>(num_groups));
  for (int32_t g = 0; g < num_groups; ++g) {
    dataset.groups[static_cast<size_t>(g)].id = std::to_string(g);
    dataset.groups[static_cast<size_t>(g)].label = std::to_string(g);
  }
  for (size_t r = 0; r < record_group.size(); ++r) {
    const int32_t g = record_group[r];
    if (g < 0 || g >= num_groups) {
      return Status::OutOfRange("record " + std::to_string(r) +
                                " has invalid group " + std::to_string(g));
    }
    dataset.groups[static_cast<size_t>(g)].record_ids.push_back(static_cast<int32_t>(r));
  }
  dataset.group_entities = std::move(group_entities);
  GL_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

}  // namespace grouplink
