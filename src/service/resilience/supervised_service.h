#ifndef GROUPLINK_SERVICE_RESILIENCE_SUPERVISED_SERVICE_H_
#define GROUPLINK_SERVICE_RESILIENCE_SUPERVISED_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/service.h"
#include "service/resilience/admission.h"
#include "service/resilience/circuit_breaker.h"
#include "service/resilience/health.h"
#include "service/resilience/retry_policy.h"

namespace grouplink {
namespace resilience {

struct SupervisedConfig {
  /// The inner LinkageService configuration. persist_on_refresh is forced
  /// off: the supervisor owns durability (watchdog-driven persists behind
  /// the retry policy and storage breaker), so the inner service must not
  /// race its own unsupervised writes against it.
  ServiceConfig service;

  /// Retry schedule for supervised persists. A half-open breaker probe is
  /// always a single attempt regardless of max_attempts.
  RetryConfig persist_retry;
  /// Breaker guarding the storage tier. While open, persists are skipped
  /// entirely — the service keeps serving from RAM and retries after the
  /// cooldown.
  BreakerConfig storage_breaker;
  /// Query-path admission control.
  AdmissionConfig admission;

  /// Watchdog tick period. The watchdog is the only place supervised
  /// persists, stall detection, refresh re-arms, and quarantine happen.
  double watchdog_interval_ms = 10.0;
  /// An in-flight refresh older than this is counted as stalled (health
  /// degrades; the stall is counted once per refresh).
  double stall_timeout_ms = 1000.0;
  /// Consecutive refresh failures with a culprit label before that
  /// arrival batch is quarantined (its groups removed, the refresh
  /// re-armed). Must be >= 1.
  int32_t quarantine_after_failures = 3;
  /// Consecutive refresh failures before the watchdog stops re-arming and
  /// health goes kUnhealthy. Must be >= quarantine_after_failures.
  int32_t give_up_after_failures = 6;
  /// Backoff schedule pacing refresh re-arms (only BackoffMs is used; the
  /// watchdog never sleeps — it checks the pacing deadline each tick).
  RetryConfig refresh_rearm;
  /// False disables the background watchdog; tests drive ticks
  /// deterministically through TickForTesting().
  bool enable_watchdog = true;

  [[nodiscard]] Status Validate() const;
};

/// A self-healing runtime wrapped around LinkageService. The inner
/// service stays exactly what it was — lock-free epoch reads, serialized
/// writer, non-blocking refresh — and the supervisor adds the four duties
/// a production replica needs when its environment misbehaves:
///
///   * Durability with retry + circuit breaker: a watchdog persists every
///     newly published epoch through RetryPolicy (transient kIoError is
///     retried with seeded-jitter backoff); persistent failure trips the
///     storage breaker and the service degrades to in-RAM serving instead
///     of hammering a dead disk, probing it again after the cooldown.
///   * Overload control: LinkQuery passes an admission gate — a bounded
///     concurrency limiter plus deadline-aware early rejection (a query
///     whose deadline is infeasible under the served-latency EWMA is shed
///     with kUnavailable *before* touching the snapshot). Shedding never
///     weakens an admitted answer; the under-link-never-mis-link contract
///     is untouched.
///   * Refresh supervision: stalled refreshes are detected and counted;
///     failed async refreshes are re-armed with backoff pacing; after
///     `quarantine_after_failures` consecutive failures attributed to one
///     arrival batch (the culprit label), that batch is quarantined — its
///     groups removed — and the refresh re-armed, so one poison batch
///     cannot wedge the epoch pipeline forever.
///   * A health surface: Health() snapshots staleness, refresh state,
///     breaker/persist state, and the shed/quarantine counters; the same
///     numbers are exported as service.* gauges through the metrics
///     registry (so --metrics-json in any bench carries them).
///
/// Thread-safe like the inner service; the watchdog runs on its own
/// 1-thread pool and is stopped before the inner service is destroyed.
///
/// Mutations must flow through this wrapper (not the inner service
/// directly) for quarantine to know which group indexes an arrival label
/// produced.
class SupervisedService {
 public:
  using QueryOptions = LinkageService::QueryOptions;
  using QueryResult = LinkageService::QueryResult;
  using AddResult = LinkageService::AddResult;

  [[nodiscard]] static Result<SupervisedService> Create(
      const Dataset& seed, const SupervisedConfig& config);
  /// Warm restart from config.service.persist_path (see
  /// LinkageService::Restore). The persisted epoch counts as already
  /// persisted — the watchdog will not rewrite it.
  [[nodiscard]] static Result<SupervisedService> Restore(
      const SupervisedConfig& config);

  ~SupervisedService();
  SupervisedService(SupervisedService&&) noexcept;
  SupervisedService& operator=(SupervisedService&&) noexcept;
  SupervisedService(const SupervisedService&) = delete;
  SupervisedService& operator=(const SupervisedService&) = delete;

  /// Admission-gated query: shed requests return kUnavailable (and count
  /// into service.shed_queries) without touching the snapshot; admitted
  /// ones run exactly like LinkageService::LinkQuery and feed the
  /// latency EWMA.
  [[nodiscard]] Result<QueryResult> LinkQuery(const GroupArrival& group,
                                              const QueryOptions& options) const;
  [[nodiscard]] Result<QueryResult> LinkQuery(const GroupArrival& group) const {
    return LinkQuery(group, QueryOptions());
  }

  /// Writer mutations, forwarded to the inner service; the supervisor
  /// additionally records which group indexes each arrival label
  /// produced (the quarantine ledger).
  AddResult AddGroup(const std::string& label,
                     const std::vector<std::string>& record_texts);
  std::vector<AddResult> AddGroups(const std::vector<GroupArrival>& batch);
  void RemoveGroup(int32_t group);
  AddResult MergeGroups(int32_t into, int32_t from);

  /// Forwarded refresh controls (Refresh() is the inline stop-the-world
  /// path and always succeeds — it also resets the failure streak).
  void Refresh();
  bool RefreshAsync();
  void WaitForRefresh();

  /// Current health. Computed fresh from the live components; also
  /// refreshes the exported service.* gauges.
  [[nodiscard]] ServiceHealth Health() const;

  /// Runs one watchdog tick synchronously (persist supervision, stall
  /// detection, re-arm, quarantine). Safe alongside the background
  /// watchdog (ticks are serialized); the deterministic driver for tests
  /// built with enable_watchdog = false.
  void TickForTesting();

  /// Labels quarantined so far, in quarantine order.
  [[nodiscard]] std::vector<std::string> quarantined_labels() const;

  /// Storage-breaker introspection for tests and the chaos harness.
  [[nodiscard]] BreakerState breaker_state() const;
  [[nodiscard]] std::vector<std::pair<BreakerState, BreakerState>>
  breaker_transitions() const;

  /// Epoch most recently persisted under supervision (0 = none yet).
  [[nodiscard]] int64_t last_persisted_epoch() const;

  /// The wrapped service (read-only surface for tests: snapshot(),
  /// linked_pairs(), epochs, refresh state).
  [[nodiscard]] const LinkageService& inner() const;
  [[nodiscard]] LinkageService& inner();

  [[nodiscard]] const SupervisedConfig& config() const;

 private:
  struct Impl;
  explicit SupervisedService(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace resilience
}  // namespace grouplink

#endif  // GROUPLINK_SERVICE_RESILIENCE_SUPERVISED_SERVICE_H_
