#ifndef GROUPLINK_SERVICE_RESILIENCE_ADMISSION_H_
#define GROUPLINK_SERVICE_RESILIENCE_ADMISSION_H_

#include <cstdint>

#include "common/mutex.h"
#include "common/status.h"

namespace grouplink {
namespace resilience {

struct AdmissionConfig {
  /// Queries allowed in flight at once. Must be >= 1.
  int32_t max_concurrent_queries = 64;
  /// Deadlines below this floor are shed outright (the service cannot do
  /// anything useful in, say, 1 microsecond). <= 0 disables the floor.
  double min_feasible_deadline_ms = 0.0;
  /// Smoothing factor for the served-latency EWMA, in (0, 1].
  double ewma_alpha = 0.2;
  /// A query with deadline D is feasible when
  /// D >= feasibility_headroom * ewma_latency_ms. 0 disables the
  /// EWMA-based check (the floor above still applies).
  double feasibility_headroom = 1.0;

  [[nodiscard]] Status Validate() const;
};

/// Bounded admission gate for the query path: a concurrency limiter plus
/// deadline-aware early rejection. Queries whose deadline cannot plausibly
/// be met — below the configured floor, or under the observed-latency EWMA
/// scaled by the headroom factor — are shed with kUnavailable *before*
/// touching the snapshot, so an overloaded service spends its cycles on
/// queries it can actually finish. Shedding never degrades an admitted
/// answer: it is an up-front refusal, and the under-link-never-mis-link
/// contract is untouched.
class AdmissionGate {
 public:
  /// RAII in-flight slot. Holds one unit of max_concurrent_queries from
  /// TryAdmit success until destruction.
  class Permit {
   public:
    Permit() = default;
    ~Permit() { Release(); }
    Permit(Permit&& other) noexcept : gate_(other.gate_) {
      other.gate_ = nullptr;
    }
    Permit& operator=(Permit&& other) noexcept;
    Permit(const Permit&) = delete;
    Permit& operator=(const Permit&) = delete;

    [[nodiscard]] bool held() const { return gate_ != nullptr; }
    void Release();

   private:
    friend class AdmissionGate;
    explicit Permit(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  explicit AdmissionGate(const AdmissionConfig& config);

  /// Admits or sheds one query. `deadline_ms` <= 0 means "no deadline"
  /// (always feasible). On success `*permit` holds a slot; on shed the
  /// returned status is kUnavailable and `*permit` is empty.
  [[nodiscard]] Status TryAdmit(double deadline_ms, Permit* permit);

  /// Feeds one served-query latency into the EWMA feasibility model.
  void RecordLatencyMs(double ms);

  [[nodiscard]] double latency_ewma_ms() const;
  [[nodiscard]] int32_t inflight() const;
  [[nodiscard]] int64_t admitted() const;
  /// Shed because the concurrency limit was reached.
  [[nodiscard]] int64_t shed_overload() const;
  /// Shed because the deadline was infeasible.
  [[nodiscard]] int64_t shed_deadline() const;
  [[nodiscard]] int64_t shed_total() const;

 private:
  void Release();

  AdmissionConfig config_;
  mutable Mutex mutex_;
  int32_t inflight_ GL_GUARDED_BY(mutex_) = 0;
  double latency_ewma_ms_ GL_GUARDED_BY(mutex_) = 0.0;
  bool ewma_primed_ GL_GUARDED_BY(mutex_) = false;
  int64_t admitted_ GL_GUARDED_BY(mutex_) = 0;
  int64_t shed_overload_ GL_GUARDED_BY(mutex_) = 0;
  int64_t shed_deadline_ GL_GUARDED_BY(mutex_) = 0;
};

}  // namespace resilience
}  // namespace grouplink

#endif  // GROUPLINK_SERVICE_RESILIENCE_ADMISSION_H_
