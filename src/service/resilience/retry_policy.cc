#include "service/resilience/retry_policy.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/string_util.h"

namespace grouplink {
namespace resilience {
namespace {

// Deterministic uniform draw in [0, 1) for retry ordinal `n` — the same
// fmix64 finalizer as the fault injector's probability draws, so jittered
// schedules are reproducible from (jitter_seed, n) alone.
double JitterDraw(uint64_t seed, int64_t n) {
  uint64_t mixed =
      HashCombine(seed ^ 0x9e3779b97f4a7c15ULL, static_cast<uint64_t>(n));
  mixed ^= mixed >> 33;
  mixed *= 0xff51afd7ed558ccdULL;
  mixed ^= mixed >> 33;
  mixed *= 0xc4ceb9fe1a85ec53ULL;
  mixed ^= mixed >> 33;
  return static_cast<double>(mixed >> 11) / 9007199254740992.0;  // 2^53
}

void RealSleep(double ms) {
  if (ms <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

}  // namespace

Status RetryConfig::Validate() const {
  if (max_attempts < 1) {
    return Status::InvalidArgument("RetryConfig: max_attempts must be >= 1");
  }
  if (!std::isfinite(initial_backoff_ms) || initial_backoff_ms < 0.0) {
    return Status::InvalidArgument(
        "RetryConfig: initial_backoff_ms must be finite and >= 0");
  }
  if (!std::isfinite(backoff_multiplier) || backoff_multiplier < 1.0) {
    return Status::InvalidArgument(
        "RetryConfig: backoff_multiplier must be finite and >= 1");
  }
  if (!std::isfinite(max_backoff_ms) || max_backoff_ms < initial_backoff_ms) {
    return Status::InvalidArgument(
        "RetryConfig: max_backoff_ms must be finite and >= initial_backoff_ms");
  }
  if (!std::isfinite(jitter) || jitter < 0.0 || jitter > 1.0) {
    return Status::InvalidArgument("RetryConfig: jitter must lie in [0, 1]");
  }
  return Status::Ok();
}

RetryPolicy::RetryPolicy(const RetryConfig& config)
    : RetryPolicy(config, RealSleep) {}

RetryPolicy::RetryPolicy(const RetryConfig& config, Sleeper sleeper)
    : config_(config), sleeper_(std::move(sleeper)) {
  GL_CHECK(config_.Validate().ok()) << config_.Validate().ToString();
}

double RetryPolicy::BackoffMs(int32_t retry) const {
  GL_DCHECK_GT(retry, 0);
  double backoff = config_.initial_backoff_ms;
  for (int32_t k = 1; k < retry && backoff < config_.max_backoff_ms; ++k) {
    backoff *= config_.backoff_multiplier;
  }
  backoff = std::min(backoff, config_.max_backoff_ms);
  if (config_.jitter > 0.0) {
    const double scale =
        1.0 + config_.jitter * (2.0 * JitterDraw(config_.jitter_seed, retry) - 1.0);
    backoff *= scale;
  }
  return backoff;
}

Status RetryPolicy::Run(const std::function<Status()>& op,
                        RetryStats* stats) const {
  RetryStats local;
  Status status = Status::Ok();
  for (int32_t attempt = 1; attempt <= config_.max_attempts; ++attempt) {
    ++local.attempts;
    status = op();
    if (status.ok() || !status.IsRetryable()) break;
    if (attempt == config_.max_attempts) break;
    const double backoff = BackoffMs(attempt);
    local.slept_ms += backoff;
    ++local.retries;
    sleeper_(backoff);
  }
  if (stats != nullptr) *stats = local;
  return status;
}

}  // namespace resilience
}  // namespace grouplink
