#include "service/resilience/circuit_breaker.h"

#include <chrono>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace grouplink {
namespace resilience {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

Status BreakerConfig::Validate() const {
  if (failure_threshold < 1) {
    return Status::InvalidArgument(
        "BreakerConfig: failure_threshold must be >= 1");
  }
  if (!std::isfinite(open_cooldown_ms) || open_cooldown_ms < 0.0) {
    return Status::InvalidArgument(
        "BreakerConfig: open_cooldown_ms must be finite and >= 0");
  }
  return Status::Ok();
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config)
    : CircuitBreaker(config, SteadyNowMs) {}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config, NowMs now_ms)
    : config_(config), now_ms_(std::move(now_ms)) {
  GL_CHECK(config_.Validate().ok()) << config_.Validate().ToString();
}

bool CircuitBreaker::Allow() {
  MutexLock lock(&mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_ms_() - opened_at_ms_ >= config_.open_cooldown_ms) {
        TransitionLocked(BreakerState::kHalfOpen);
        probe_outstanding_ = true;
        return true;
      }
      ++rejected_;
      return false;
    case BreakerState::kHalfOpen:
      if (!probe_outstanding_) {
        probe_outstanding_ = true;
        return true;
      }
      ++rejected_;
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  MutexLock lock(&mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      probe_outstanding_ = false;
      consecutive_failures_ = 0;
      TransitionLocked(BreakerState::kClosed);
      break;
    case BreakerState::kOpen:
      // A straggler admitted before the trip finished late; the breaker
      // stays open until the cooldown-driven probe succeeds.
      break;
  }
}

void CircuitBreaker::RecordFailure() {
  MutexLock lock(&mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        ++trips_;
        opened_at_ms_ = now_ms_();
        TransitionLocked(BreakerState::kOpen);
      }
      break;
    case BreakerState::kHalfOpen:
      probe_outstanding_ = false;
      opened_at_ms_ = now_ms_();
      TransitionLocked(BreakerState::kOpen);
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  MutexLock lock(&mutex_);
  return state_;
}

int32_t CircuitBreaker::consecutive_failures() const {
  MutexLock lock(&mutex_);
  return consecutive_failures_;
}

int64_t CircuitBreaker::trips() const {
  MutexLock lock(&mutex_);
  return trips_;
}

int64_t CircuitBreaker::rejected() const {
  MutexLock lock(&mutex_);
  return rejected_;
}

std::vector<std::pair<BreakerState, BreakerState>>
CircuitBreaker::transition_log() const {
  MutexLock lock(&mutex_);
  return transitions_;
}

bool CircuitBreaker::IsLegalTransition(BreakerState from, BreakerState to) {
  if (from == BreakerState::kClosed) return to == BreakerState::kOpen;
  if (from == BreakerState::kOpen) return to == BreakerState::kHalfOpen;
  return to == BreakerState::kClosed || to == BreakerState::kOpen;
}

void CircuitBreaker::TransitionLocked(BreakerState to) {
  GL_DCHECK(IsLegalTransition(state_, to))
      << "illegal breaker transition " << BreakerStateName(state_) << " -> "
      << BreakerStateName(to);
  transitions_.emplace_back(state_, to);
  state_ = to;
}

}  // namespace resilience
}  // namespace grouplink
