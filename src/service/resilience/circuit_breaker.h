#ifndef GROUPLINK_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_
#define GROUPLINK_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"

namespace grouplink {
namespace resilience {

/// Breaker states. Numeric values are the service.breaker_state gauge
/// encoding (stable; dashboards and jq checks rely on it).
enum class BreakerState {
  kClosed = 0,    // Healthy: every call admitted.
  kOpen = 1,      // Tripped: calls rejected until the cooldown elapses.
  kHalfOpen = 2,  // Probing: one call admitted; its outcome decides.
};

const char* BreakerStateName(BreakerState state);

struct BreakerConfig {
  /// Consecutive failures that trip closed -> open. Must be >= 1.
  int32_t failure_threshold = 3;
  /// Milliseconds an open breaker waits before allowing a half-open
  /// probe. Must be >= 0 (0 = probe immediately, useful in tests).
  double open_cooldown_ms = 1000.0;

  [[nodiscard]] Status Validate() const;
};

/// Classic three-state circuit breaker guarding a fallible dependency
/// (here: the storage tier). Closed admits everything and counts
/// consecutive failures; `failure_threshold` of them trip it open, which
/// rejects every call — the caller degrades (in-RAM serving) instead of
/// hammering a dead disk. After `open_cooldown_ms` the next Allow() is
/// admitted as the single half-open probe: success re-closes the breaker,
/// failure re-opens it and restarts the cooldown.
///
/// Legal transitions (asserted by the chaos harness against the recorded
/// transition log): closed->open, open->half-open, half-open->closed,
/// half-open->open. Nothing else.
///
/// Thread-safe; the clock is injectable so tests drive the cooldown
/// without sleeping.
class CircuitBreaker {
 public:
  /// Returns "now" in milliseconds on some monotonic scale; the default
  /// reads steady_clock.
  using NowMs = std::function<double()>;

  explicit CircuitBreaker(const BreakerConfig& config);
  CircuitBreaker(const BreakerConfig& config, NowMs now_ms);

  /// True when a call may proceed. Open -> half-open happens inside this
  /// call once the cooldown has elapsed (the admitted caller is the
  /// probe); while a half-open probe is outstanding, further calls are
  /// rejected. Every admitted caller MUST report RecordSuccess or
  /// RecordFailure.
  [[nodiscard]] bool Allow();

  void RecordSuccess();
  void RecordFailure();

  [[nodiscard]] BreakerState state() const;
  /// Consecutive failures observed in the closed state.
  [[nodiscard]] int32_t consecutive_failures() const;
  /// Closed->open trips so far.
  [[nodiscard]] int64_t trips() const;
  /// Calls rejected (open, or half-open with a probe outstanding).
  [[nodiscard]] int64_t rejected() const;

  /// Every transition in order, as (from, to) pairs — what the chaos
  /// harness checks legality against.
  [[nodiscard]] std::vector<std::pair<BreakerState, BreakerState>>
  transition_log() const;

  /// True when (from -> to) is one of the four legal edges.
  [[nodiscard]] static bool IsLegalTransition(BreakerState from, BreakerState to);

 private:
  void TransitionLocked(BreakerState to) GL_REQUIRES(mutex_);

  BreakerConfig config_;
  NowMs now_ms_;
  mutable Mutex mutex_;
  BreakerState state_ GL_GUARDED_BY(mutex_) = BreakerState::kClosed;
  int32_t consecutive_failures_ GL_GUARDED_BY(mutex_) = 0;
  bool probe_outstanding_ GL_GUARDED_BY(mutex_) = false;
  double opened_at_ms_ GL_GUARDED_BY(mutex_) = 0.0;
  int64_t trips_ GL_GUARDED_BY(mutex_) = 0;
  int64_t rejected_ GL_GUARDED_BY(mutex_) = 0;
  std::vector<std::pair<BreakerState, BreakerState>> transitions_
      GL_GUARDED_BY(mutex_);
};

}  // namespace resilience
}  // namespace grouplink

#endif  // GROUPLINK_SERVICE_RESILIENCE_CIRCUIT_BREAKER_H_
