#include "service/resilience/supervised_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/timer.h"

namespace grouplink {
namespace resilience {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Resilience-runtime metrics, hoisted once (registry lookups take a
// mutex). The inner service's ServiceMetrics already owns
// service.persist_failures / service.refresh_failures.
struct ResilienceMetrics {
  Counter& persist_retries;
  Counter& shed_queries;
  Counter& quarantined_batches;
  Counter& refresh_stalls;
  Counter& refresh_rearms;
  Gauge& breaker_state;
  Gauge& health_state;
  Gauge& epoch_age_ms;
  Gauge& refresh_lag_groups;
  Gauge& persist_lag_epochs;
  Gauge& inflight_queries;

  static ResilienceMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static ResilienceMetrics metrics{
        registry.CounterRef("service.persist_retries"),
        registry.CounterRef("service.shed_queries"),
        registry.CounterRef("service.quarantined_batches"),
        registry.CounterRef("service.refresh_stalls"),
        registry.CounterRef("service.refresh_rearms"),
        registry.GaugeRef("service.breaker_state"),
        registry.GaugeRef("service.health_state"),
        registry.GaugeRef("service.epoch_age_ms"),
        registry.GaugeRef("service.refresh_lag_groups"),
        registry.GaugeRef("service.persist_lag_epochs"),
        registry.GaugeRef("service.inflight_queries")};
    return metrics;
  }
};

}  // namespace

Status SupervisedConfig::Validate() const {
  GL_RETURN_IF_ERROR(persist_retry.Validate());
  GL_RETURN_IF_ERROR(storage_breaker.Validate());
  GL_RETURN_IF_ERROR(admission.Validate());
  GL_RETURN_IF_ERROR(refresh_rearm.Validate());
  if (!std::isfinite(watchdog_interval_ms) || watchdog_interval_ms <= 0.0) {
    return Status::InvalidArgument(
        "SupervisedConfig: watchdog_interval_ms must be finite and > 0");
  }
  if (!std::isfinite(stall_timeout_ms) || stall_timeout_ms <= 0.0) {
    return Status::InvalidArgument(
        "SupervisedConfig: stall_timeout_ms must be finite and > 0");
  }
  if (quarantine_after_failures < 1) {
    return Status::InvalidArgument(
        "SupervisedConfig: quarantine_after_failures must be >= 1");
  }
  if (give_up_after_failures < quarantine_after_failures) {
    return Status::InvalidArgument(
        "SupervisedConfig: give_up_after_failures must be >= "
        "quarantine_after_failures");
  }
  return Status::Ok();
}

struct SupervisedService::Impl {
  Impl(LinkageService service, const SupervisedConfig& cfg)
      : config(cfg),
        inner(std::move(service)),
        breaker(cfg.storage_breaker),
        gate(cfg.admission),
        persist_retry(cfg.persist_retry),
        rearm_policy(cfg.refresh_rearm) {}

  SupervisedConfig config;
  LinkageService inner;
  CircuitBreaker breaker;
  AdmissionGate gate;
  RetryPolicy persist_retry;
  RetryPolicy rearm_policy;

  /// Serializes watchdog ticks (background loop vs TickForTesting).
  Mutex tick_mu;

  /// Guards the ledger and supervision counters below.
  mutable Mutex mu;
  /// Arrival label -> live group indexes it produced (the quarantine
  /// ledger), with the reverse map for O(1) forgetting on remove/merge.
  std::unordered_map<std::string, std::vector<int32_t>> arrivals
      GL_GUARDED_BY(mu);
  std::unordered_map<int32_t, std::string> owner_label GL_GUARDED_BY(mu);
  std::vector<std::string> quarantined GL_GUARDED_BY(mu);
  std::string last_quarantined_label GL_GUARDED_BY(mu);
  int64_t last_persisted_epoch GL_GUARDED_BY(mu) = 0;
  int64_t persist_retries_total GL_GUARDED_BY(mu) = 0;
  int64_t refresh_stalls GL_GUARDED_BY(mu) = 0;
  int64_t refresh_rearms GL_GUARDED_BY(mu) = 0;
  bool stall_counted GL_GUARDED_BY(mu) = false;
  double next_rearm_at_ms GL_GUARDED_BY(mu) = 0.0;

  Mutex stop_mu;
  CondVar stop_cv;
  bool stop GL_GUARDED_BY(stop_mu) = false;
  std::unique_ptr<ThreadPool> watchdog;

  void RecordArrivalLocked(const std::string& label, int32_t group)
      GL_REQUIRES(mu) {
    arrivals[label].push_back(group);
    owner_label[group] = label;
  }

  void ForgetGroupLocked(int32_t group) GL_REQUIRES(mu) {
    auto it = owner_label.find(group);
    if (it == owner_label.end()) return;
    auto arrival = arrivals.find(it->second);
    if (arrival != arrivals.end()) {
      auto& groups = arrival->second;
      groups.erase(std::remove(groups.begin(), groups.end(), group),
                   groups.end());
      if (groups.empty()) arrivals.erase(arrival);
    }
    owner_label.erase(it);
  }

  void StartWatchdog() {
    if (!config.enable_watchdog) return;
    watchdog = std::make_unique<ThreadPool>(1);
    watchdog->Submit([this] { WatchdogLoop(); });
  }

  void StopWatchdog() {
    {
      MutexLock lock(&stop_mu);
      stop = true;
    }
    stop_cv.SignalAll();
    watchdog.reset();  // Joins the loop.
  }

  // Restructured from a hand-juggled unlock/relock loop the analysis
  // could not prove: each iteration now holds stop_mu for exactly one
  // scoped region (stop check + bounded wait) and ticks unlocked.
  void WatchdogLoop() {
    for (;;) {
      {
        MutexLock lock(&stop_mu);
        if (stop) return;
      }
      Tick();
      MutexLock lock(&stop_mu);
      if (stop) return;
      stop_cv.WaitFor(&stop_mu, config.watchdog_interval_ms);
    }
  }

  void Tick();
  void SupervisePersist();
  void DetectStall();
  void SuperviseRefresh();
  void Quarantine(const std::string& culprit);
  ServiceHealth ComputeHealth() const;
  void ExportHealth(const ServiceHealth& health) const;
};

void SupervisedService::Impl::Tick() {
  MutexLock tick_lock(&tick_mu);
  SupervisePersist();
  DetectStall();
  SuperviseRefresh();
  ExportHealth(ComputeHealth());
}

void SupervisedService::Impl::SupervisePersist() {
  if (config.service.persist_path.empty()) return;
  const int64_t epoch = inner.published_epoch();
  {
    MutexLock lock(&mu);
    if (epoch <= last_persisted_epoch) return;
  }
  if (!breaker.Allow()) return;  // Open: keep serving from RAM.
  // Allow() may have admitted us as the half-open probe; a probe is a
  // single attempt — the retry policy is for a breaker that still trusts
  // the disk.
  const bool probe = breaker.state() == BreakerState::kHalfOpen;
  RetryStats stats;
  Status status = Status::Ok();
  if (probe) {
    stats.attempts = 1;
    status = inner.PersistNow();
  } else {
    status = persist_retry.Run([this] { return inner.PersistNow(); }, &stats);
  }
  if (stats.retries > 0) {
    ResilienceMetrics::Get().persist_retries.Increment(
        static_cast<uint64_t>(stats.retries));
  }
  if (status.ok()) {
    breaker.RecordSuccess();
  } else {
    breaker.RecordFailure();
    GL_LOG(Warning) << "supervised persist of epoch " << epoch
                    << " failed after " << stats.attempts
                    << " attempt(s): " << status.ToString()
                    << " (breaker " << BreakerStateName(breaker.state()) << ")";
  }
  MutexLock lock(&mu);
  persist_retries_total += stats.retries;
  if (status.ok()) last_persisted_epoch = epoch;
}

void SupervisedService::Impl::DetectStall() {
  const double inflight_ms = inner.refresh_inflight_ms();
  MutexLock lock(&mu);
  if (inflight_ms > config.stall_timeout_ms) {
    if (!stall_counted) {
      stall_counted = true;
      ++refresh_stalls;
      ResilienceMetrics::Get().refresh_stalls.Increment();
      GL_LOG(Warning) << "background refresh stalled: in flight for "
                      << inflight_ms << "ms (stall timeout "
                      << config.stall_timeout_ms << "ms)";
    }
  } else if (!inner.refresh_in_flight()) {
    stall_counted = false;
  }
}

void SupervisedService::Impl::SuperviseRefresh() {
  const int64_t streak = inner.consecutive_refresh_failures();
  if (streak == 0) {
    MutexLock lock(&mu);
    next_rearm_at_ms = 0.0;
    return;
  }
  if (inner.refresh_in_flight()) return;  // A re-arm is already running.
  if (streak >= config.quarantine_after_failures) {
    const std::string culprit = inner.last_refresh_culprit();
    if (!culprit.empty()) Quarantine(culprit);
  }
  if (streak >= config.give_up_after_failures) return;  // Unhealthy; stop.
  const double now = NowMs();
  {
    MutexLock lock(&mu);
    if (now < next_rearm_at_ms) return;
    const int32_t ordinal =
        static_cast<int32_t>(std::min<int64_t>(streak, 30));
    next_rearm_at_ms = now + rearm_policy.BackoffMs(ordinal);
  }
  if (inner.RefreshAsync()) {
    {
      MutexLock lock(&mu);
      ++refresh_rearms;
    }
    ResilienceMetrics::Get().refresh_rearms.Increment();
  }
}

void SupervisedService::Impl::Quarantine(const std::string& culprit) {
  std::vector<int32_t> doomed;
  {
    MutexLock lock(&mu);
    if (culprit == last_quarantined_label) return;  // Already handled.
    auto it = arrivals.find(culprit);
    if (it != arrivals.end()) doomed = it->second;
    last_quarantined_label = culprit;
    quarantined.push_back(culprit);
  }
  for (int32_t group : doomed) inner.RemoveGroup(group);
  {
    MutexLock lock(&mu);
    for (int32_t group : doomed) owner_label.erase(group);
    arrivals.erase(culprit);
  }
  ResilienceMetrics::Get().quarantined_batches.Increment();
  GL_LOG(Warning) << "quarantined poison batch '" << culprit << "' ("
                  << doomed.size() << " group(s) removed); re-arming refresh";
}

ServiceHealth SupervisedService::Impl::ComputeHealth() const {
  ServiceHealth health;
  health.published_epoch = inner.published_epoch();
  health.epoch_age_ms = inner.published_age_ms();
  health.refresh_lag_groups = inner.groups_since_refresh();
  health.refresh_in_flight = inner.refresh_in_flight();
  health.refresh_inflight_ms = inner.refresh_inflight_ms();
  health.refresh_stalled = health.refresh_inflight_ms > config.stall_timeout_ms;
  health.consecutive_refresh_failures = inner.consecutive_refresh_failures();
  health.last_refresh_status = inner.last_refresh_status();
  health.storage_breaker = breaker.state();
  health.last_persist_status = inner.last_persist_status();
  {
    MutexLock lock(&mu);
    health.refresh_stalls = refresh_stalls;
    health.refresh_rearms = refresh_rearms;
    health.persist_retries = persist_retries_total;
    health.quarantined_batches = static_cast<int64_t>(quarantined.size());
    if (!config.service.persist_path.empty()) {
      health.persist_lag_epochs =
          std::max<int64_t>(0, health.published_epoch - last_persisted_epoch);
    }
  }
  health.shed_queries = gate.shed_total();
  health.inflight_queries = gate.inflight();

  if (health.consecutive_refresh_failures >= config.give_up_after_failures) {
    health.state = HealthState::kUnhealthy;
  } else if (health.storage_breaker != BreakerState::kClosed ||
             health.refresh_stalled ||
             health.consecutive_refresh_failures > 0 ||
             !health.last_persist_status.ok()) {
    health.state = HealthState::kDegraded;
  } else {
    health.state = HealthState::kHealthy;
  }
  return health;
}

void SupervisedService::Impl::ExportHealth(const ServiceHealth& health) const {
  auto& metrics = ResilienceMetrics::Get();
  metrics.breaker_state.Set(static_cast<double>(health.storage_breaker));
  metrics.health_state.Set(static_cast<double>(health.state));
  metrics.epoch_age_ms.Set(health.epoch_age_ms);
  metrics.refresh_lag_groups.Set(static_cast<double>(health.refresh_lag_groups));
  metrics.persist_lag_epochs.Set(static_cast<double>(health.persist_lag_epochs));
  metrics.inflight_queries.Set(static_cast<double>(health.inflight_queries));
}

Result<SupervisedService> SupervisedService::Create(
    const Dataset& seed, const SupervisedConfig& config) {
  GL_RETURN_IF_ERROR(config.Validate());
  SupervisedConfig cfg = config;
  cfg.service.persist_on_refresh = false;  // The watchdog owns durability.
  GL_ASSIGN_OR_RETURN(LinkageService inner,
                      LinkageService::Create(seed, cfg.service));
  auto impl = std::make_unique<Impl>(std::move(inner), cfg);
  impl->StartWatchdog();
  return SupervisedService(std::move(impl));
}

Result<SupervisedService> SupervisedService::Restore(
    const SupervisedConfig& config) {
  GL_RETURN_IF_ERROR(config.Validate());
  SupervisedConfig cfg = config;
  cfg.service.persist_on_refresh = false;
  GL_ASSIGN_OR_RETURN(LinkageService inner, LinkageService::Restore(cfg.service));
  auto impl = std::make_unique<Impl>(std::move(inner), cfg);
  {
    MutexLock lock(&impl->mu);
    impl->last_persisted_epoch = impl->inner.published_epoch();
  }
  impl->StartWatchdog();
  return SupervisedService(std::move(impl));
}

SupervisedService::SupervisedService(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

SupervisedService::~SupervisedService() {
  if (impl_ != nullptr) impl_->StopWatchdog();
}

SupervisedService::SupervisedService(SupervisedService&&) noexcept = default;
SupervisedService& SupervisedService::operator=(SupervisedService&&) noexcept =
    default;

Result<SupervisedService::QueryResult> SupervisedService::LinkQuery(
    const GroupArrival& group, const QueryOptions& options) const {
  const double deadline_ms = options.deadline_ms > 0.0
                                 ? options.deadline_ms
                                 : impl_->config.service.default_query_deadline_ms;
  AdmissionGate::Permit permit;
  Status admitted = impl_->gate.TryAdmit(deadline_ms, &permit);
  if (!admitted.ok()) {
    ResilienceMetrics::Get().shed_queries.Increment();
    return admitted;
  }
  WallTimer timer;
  QueryResult result = impl_->inner.LinkQuery(group, options);
  impl_->gate.RecordLatencyMs(timer.ElapsedMillis());
  return result;
}

SupervisedService::AddResult SupervisedService::AddGroup(
    const std::string& label, const std::vector<std::string>& record_texts) {
  AddResult result = impl_->inner.AddGroup(label, record_texts);
  MutexLock lock(&impl_->mu);
  impl_->RecordArrivalLocked(label, result.group_index);
  return result;
}

std::vector<SupervisedService::AddResult> SupervisedService::AddGroups(
    const std::vector<GroupArrival>& batch) {
  std::vector<AddResult> results = impl_->inner.AddGroups(batch);
  MutexLock lock(&impl_->mu);
  for (size_t i = 0; i < results.size() && i < batch.size(); ++i) {
    impl_->RecordArrivalLocked(batch[i].label, results[i].group_index);
  }
  return results;
}

void SupervisedService::RemoveGroup(int32_t group) {
  impl_->inner.RemoveGroup(group);
  MutexLock lock(&impl_->mu);
  impl_->ForgetGroupLocked(group);
}

SupervisedService::AddResult SupervisedService::MergeGroups(int32_t into,
                                                            int32_t from) {
  AddResult result = impl_->inner.MergeGroups(into, from);
  MutexLock lock(&impl_->mu);
  impl_->ForgetGroupLocked(from);
  return result;
}

void SupervisedService::Refresh() { impl_->inner.Refresh(); }

bool SupervisedService::RefreshAsync() { return impl_->inner.RefreshAsync(); }

void SupervisedService::WaitForRefresh() { impl_->inner.WaitForRefresh(); }

ServiceHealth SupervisedService::Health() const {
  ServiceHealth health = impl_->ComputeHealth();
  impl_->ExportHealth(health);
  return health;
}

void SupervisedService::TickForTesting() { impl_->Tick(); }

std::vector<std::string> SupervisedService::quarantined_labels() const {
  MutexLock lock(&impl_->mu);
  return impl_->quarantined;
}

BreakerState SupervisedService::breaker_state() const {
  return impl_->breaker.state();
}

std::vector<std::pair<BreakerState, BreakerState>>
SupervisedService::breaker_transitions() const {
  return impl_->breaker.transition_log();
}

int64_t SupervisedService::last_persisted_epoch() const {
  MutexLock lock(&impl_->mu);
  return impl_->last_persisted_epoch;
}

const LinkageService& SupervisedService::inner() const { return impl_->inner; }

LinkageService& SupervisedService::inner() { return impl_->inner; }

const SupervisedConfig& SupervisedService::config() const {
  return impl_->config;
}

}  // namespace resilience
}  // namespace grouplink
