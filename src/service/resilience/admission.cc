#include "service/resilience/admission.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace grouplink {
namespace resilience {

Status AdmissionConfig::Validate() const {
  if (max_concurrent_queries < 1) {
    return Status::InvalidArgument(
        "AdmissionConfig: max_concurrent_queries must be >= 1");
  }
  if (!std::isfinite(ewma_alpha) || ewma_alpha <= 0.0 || ewma_alpha > 1.0) {
    return Status::InvalidArgument(
        "AdmissionConfig: ewma_alpha must lie in (0, 1]");
  }
  if (!std::isfinite(feasibility_headroom) || feasibility_headroom < 0.0) {
    return Status::InvalidArgument(
        "AdmissionConfig: feasibility_headroom must be finite and >= 0");
  }
  return Status::Ok();
}

AdmissionGate::Permit& AdmissionGate::Permit::operator=(
    Permit&& other) noexcept {
  if (this != &other) {
    Release();
    gate_ = other.gate_;
    other.gate_ = nullptr;
  }
  return *this;
}

void AdmissionGate::Permit::Release() {
  if (gate_ != nullptr) {
    gate_->Release();
    gate_ = nullptr;
  }
}

AdmissionGate::AdmissionGate(const AdmissionConfig& config) : config_(config) {
  GL_CHECK(config_.Validate().ok()) << config_.Validate().ToString();
}

Status AdmissionGate::TryAdmit(double deadline_ms, Permit* permit) {
  GL_DCHECK(permit != nullptr);
  *permit = Permit();
  MutexLock lock(&mutex_);
  if (deadline_ms > 0.0) {
    if (config_.min_feasible_deadline_ms > 0.0 &&
        deadline_ms < config_.min_feasible_deadline_ms) {
      ++shed_deadline_;
      return Status::Unavailable(
          "deadline " + FormatDouble(deadline_ms, 3) +
          "ms below admission floor " +
          FormatDouble(config_.min_feasible_deadline_ms, 3) + "ms");
    }
    if (config_.feasibility_headroom > 0.0 && ewma_primed_ &&
        deadline_ms < config_.feasibility_headroom * latency_ewma_ms_) {
      ++shed_deadline_;
      return Status::Unavailable(
          "deadline " + FormatDouble(deadline_ms, 3) +
          "ms infeasible: served-latency EWMA " +
          FormatDouble(latency_ewma_ms_, 3) + "ms x headroom " +
          FormatDouble(config_.feasibility_headroom, 2));
    }
  }
  if (inflight_ >= config_.max_concurrent_queries) {
    ++shed_overload_;
    return Status::Unavailable(
        "overloaded: " + std::to_string(inflight_) +
        " queries in flight (limit " +
        std::to_string(config_.max_concurrent_queries) + ")");
  }
  ++inflight_;
  ++admitted_;
  *permit = Permit(this);
  return Status::Ok();
}

void AdmissionGate::RecordLatencyMs(double ms) {
  if (!std::isfinite(ms) || ms < 0.0) return;
  MutexLock lock(&mutex_);
  if (!ewma_primed_) {
    latency_ewma_ms_ = ms;
    ewma_primed_ = true;
  } else {
    latency_ewma_ms_ += config_.ewma_alpha * (ms - latency_ewma_ms_);
  }
}

double AdmissionGate::latency_ewma_ms() const {
  MutexLock lock(&mutex_);
  return latency_ewma_ms_;
}

int32_t AdmissionGate::inflight() const {
  MutexLock lock(&mutex_);
  return inflight_;
}

int64_t AdmissionGate::admitted() const {
  MutexLock lock(&mutex_);
  return admitted_;
}

int64_t AdmissionGate::shed_overload() const {
  MutexLock lock(&mutex_);
  return shed_overload_;
}

int64_t AdmissionGate::shed_deadline() const {
  MutexLock lock(&mutex_);
  return shed_deadline_;
}

int64_t AdmissionGate::shed_total() const {
  MutexLock lock(&mutex_);
  return shed_overload_ + shed_deadline_;
}

void AdmissionGate::Release() {
  MutexLock lock(&mutex_);
  GL_DCHECK_GT(inflight_, 0);
  --inflight_;
}

}  // namespace resilience
}  // namespace grouplink
