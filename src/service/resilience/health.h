#ifndef GROUPLINK_SERVICE_RESILIENCE_HEALTH_H_
#define GROUPLINK_SERVICE_RESILIENCE_HEALTH_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "service/resilience/circuit_breaker.h"

namespace grouplink {
namespace resilience {

/// Overall service condition, coarsened for operators and load balancers.
/// Numeric values are the service.health_state gauge encoding.
enum class HealthState {
  kHealthy = 0,    // Serving normally; all supervised duties current.
  kDegraded = 1,   // Serving, but something is wrong: breaker not closed,
                   // a stalled or failing refresh, or persists failing —
                   // answers may be stale(r) and durability may lag.
  kUnhealthy = 2,  // Refresh has been given up on (failure streak past the
                   // give-up threshold): the epoch will not advance
                   // without intervention. Queries still serve the last
                   // good epoch.
};

inline const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "unknown";
}

/// Point-in-time health snapshot of a SupervisedService — the fields an
/// operator needs to answer "is this replica OK and how stale is it":
/// staleness (epoch age + refresh lag), refresh supervision state,
/// storage-tier state (breaker + persist outcome/lag), and the shed /
/// quarantine counters. Also exported as service.* gauges through the
/// metrics registry, so every bench's --metrics-json carries it.
struct ServiceHealth {
  HealthState state = HealthState::kHealthy;

  // Staleness.
  int64_t published_epoch = 0;
  double epoch_age_ms = 0.0;
  /// Writer mutations not yet covered by the published epoch.
  int32_t refresh_lag_groups = 0;

  // Refresh supervision.
  bool refresh_in_flight = false;
  double refresh_inflight_ms = 0.0;
  /// True while the in-flight refresh has exceeded the stall timeout.
  bool refresh_stalled = false;
  int64_t consecutive_refresh_failures = 0;
  Status last_refresh_status = Status::Ok();
  int64_t refresh_stalls = 0;
  int64_t refresh_rearms = 0;

  // Storage tier.
  BreakerState storage_breaker = BreakerState::kClosed;
  Status last_persist_status = Status::Ok();
  /// Published epochs not yet persisted (0 when persistence is off or
  /// fully caught up).
  int64_t persist_lag_epochs = 0;
  int64_t persist_retries = 0;

  // Overload control.
  int64_t shed_queries = 0;
  int32_t inflight_queries = 0;

  // Poison-batch quarantine.
  int64_t quarantined_batches = 0;
};

}  // namespace resilience
}  // namespace grouplink

#endif  // GROUPLINK_SERVICE_RESILIENCE_HEALTH_H_
