#ifndef GROUPLINK_SERVICE_RESILIENCE_RETRY_POLICY_H_
#define GROUPLINK_SERVICE_RESILIENCE_RETRY_POLICY_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace grouplink {
namespace resilience {

/// Exponential backoff with deterministic seeded jitter. Every knob is
/// explicit so a test can predict the exact schedule from the config — a
/// retry storm must be as reproducible as everything else in this
/// codebase (no wall-clock or thread-identity inputs anywhere).
struct RetryConfig {
  /// Attempts including the first (1 = no retries). Must be >= 1.
  int32_t max_attempts = 3;
  /// Backoff before retry k (k = 1-based retry ordinal) is
  /// initial_backoff_ms * backoff_multiplier^(k-1), clamped to
  /// max_backoff_ms, then jittered.
  double initial_backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;
  /// Symmetric jitter fraction in [0, 1]: the backoff is scaled by a
  /// deterministic draw from [1 - jitter, 1 + jitter] hashed from
  /// (jitter_seed, retry ordinal). 0 disables jitter.
  double jitter = 0.1;
  uint64_t jitter_seed = 0;

  [[nodiscard]] Status Validate() const;
};

/// Statistics of one RetryPolicy::Run, for metrics and assertions.
struct RetryStats {
  /// Attempts actually made (>= 1 once Run returns).
  int32_t attempts = 0;
  /// Retries made (attempts - 1).
  int32_t retries = 0;
  /// Total milliseconds slept between attempts.
  double slept_ms = 0.0;
};

/// Drives an operation through retry-with-backoff, gated on
/// Status::IsRetryable(): transient failures (kUnavailable,
/// kDeadlineExceeded, kIoError) are retried up to max_attempts, terminal
/// ones (kDataLoss above all — see the contract in common/status.h)
/// return immediately after the first attempt. The sleeper is injectable
/// so unit tests assert the exact backoff schedule without sleeping.
///
///   RetryPolicy retry(config);
///   Status s = retry.Run([&] { return store.Persist(snapshot); });
class RetryPolicy {
 public:
  /// Sleeps `ms` milliseconds between attempts; the default really sleeps.
  using Sleeper = std::function<void(double ms)>;

  explicit RetryPolicy(const RetryConfig& config);
  RetryPolicy(const RetryConfig& config, Sleeper sleeper);

  /// Backoff before the `retry`th retry (1-based), jitter applied —
  /// deterministic per config. Exposed for schedule tests and for
  /// callers (the refresh watchdog) that pace re-arms themselves instead
  /// of sleeping inline.
  [[nodiscard]] double BackoffMs(int32_t retry) const;

  /// Runs `op` until it succeeds, returns a non-retryable error, or
  /// exhausts max_attempts; returns the last status. `stats`, when
  /// non-null, receives the attempt/sleep accounting.
  [[nodiscard]] Status Run(const std::function<Status()>& op,
                           RetryStats* stats = nullptr) const;

  const RetryConfig& config() const { return config_; }

 private:
  RetryConfig config_;
  Sleeper sleeper_;
};

}  // namespace resilience
}  // namespace grouplink

#endif  // GROUPLINK_SERVICE_RESILIENCE_RETRY_POLICY_H_
