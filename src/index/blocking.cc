#include "index/blocking.h"

#include <algorithm>

#include "common/metrics.h"
#include "text/soundex.h"
#include "text/tokenizer.h"

namespace grouplink {

const char* BlockingSchemeName(BlockingScheme scheme) {
  switch (scheme) {
    case BlockingScheme::kNone:
      return "none";
    case BlockingScheme::kToken:
      return "token";
    case BlockingScheme::kFirstToken:
      return "first-token";
    case BlockingScheme::kTokenPrefix:
      return "token-prefix";
    case BlockingScheme::kSoundex:
      return "soundex";
  }
  return "unknown";
}

std::vector<std::string> BlockingKeys(BlockingScheme scheme, std::string_view text) {
  if (scheme == BlockingScheme::kNone) return {"*"};
  std::vector<std::string> tokens = ToTokenSet(Tokenize(text));
  std::vector<std::string> keys;
  switch (scheme) {
    case BlockingScheme::kNone:
      break;  // Handled above.
    case BlockingScheme::kToken:
      keys = std::move(tokens);
      break;
    case BlockingScheme::kFirstToken:
      if (!tokens.empty()) keys.push_back(tokens.front());
      break;
    case BlockingScheme::kTokenPrefix:
      for (const std::string& token : tokens) {
        keys.push_back(token.substr(0, 4));
      }
      break;
    case BlockingScheme::kSoundex:
      for (const std::string& token : tokens) {
        const std::string code = Soundex(token);
        if (!code.empty()) keys.push_back(code);
      }
      break;
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::pair<int32_t, int32_t>> SortedNeighborhoodPairs(
    const std::vector<std::string>& texts, size_t window) {
  // Sorting key: tokens sorted and joined, so word order doesn't matter.
  std::vector<std::pair<std::string, int32_t>> keyed;
  keyed.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    std::string key;
    for (const std::string& token : ToTokenSet(Tokenize(texts[i]))) {
      key += token;
      key += ' ';
    }
    keyed.emplace_back(std::move(key), static_cast<int32_t>(i));
  }
  std::sort(keyed.begin(), keyed.end());

  std::vector<std::pair<int32_t, int32_t>> pairs;
  if (window < 2) return pairs;
  for (size_t i = 0; i < keyed.size(); ++i) {
    for (size_t j = i + 1; j < keyed.size() && j < i + window; ++j) {
      const int32_t a = std::min(keyed[i].second, keyed[j].second);
      const int32_t b = std::max(keyed[i].second, keyed[j].second);
      pairs.emplace_back(a, b);
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

void Blocker::Add(int32_t item, std::string_view text) {
  static Counter& m_keys = MetricsRegistry::Default().CounterRef("blocking.keys");
  const std::vector<std::string> keys = BlockingKeys(scheme_, text);
  m_keys.Increment(keys.size());
  for (const std::string& key : keys) {
    blocks_[key].push_back(item);
  }
}

std::vector<std::pair<int32_t, int32_t>> Blocker::CandidatePairs() const {
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (const auto& [key, items] : blocks_) {
    for (size_t i = 0; i < items.size(); ++i) {
      for (size_t j = i + 1; j < items.size(); ++j) {
        const int32_t a = std::min(items[i], items[j]);
        const int32_t b = std::max(items[i], items[j]);
        if (a != b) pairs.emplace_back(a, b);
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  static Counter& m_candidates =
      MetricsRegistry::Default().CounterRef("blocking.candidates");
  m_candidates.Increment(pairs.size());
  return pairs;
}

size_t Blocker::max_block_size() const {
  size_t max_size = 0;
  for (const auto& [key, items] : blocks_) {
    max_size = std::max(max_size, items.size());
  }
  return max_size;
}

}  // namespace grouplink
