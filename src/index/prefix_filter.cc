#include "index/prefix_filter.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace grouplink {
namespace {

// Probe/posting counters shared by the join variants. Hot loops batch into
// locals and flush once per probe set, so instrumentation adds no atomic
// traffic to the posting scan itself.
Counter& ProbeCounter() {
  static Counter& counter =
      MetricsRegistry::Default().CounterRef("prefix_filter.probes");
  return counter;
}

Counter& PostingsCounter() {
  static Counter& counter =
      MetricsRegistry::Default().CounterRef("prefix_filter.postings_scanned");
  return counter;
}

// Contract predicates for GL_DCHECK. Join inputs must be sorted-unique
// token sets: duplicates skew the rarity ranks and break the linear-merge
// Jaccard verify; disorder breaks the prefix selection. Posting lists in
// the shared index must stay ascending for the `other < d` probe cut.
bool DocumentsAreSortedSets(const std::vector<std::vector<int32_t>>& documents) {
  for (const auto& doc : documents) {
    if (!std::is_sorted(doc.begin(), doc.end())) return false;
    if (std::adjacent_find(doc.begin(), doc.end()) != doc.end()) return false;
  }
  return true;
}

bool PostingListsAscending(const std::vector<std::vector<int32_t>>& index) {
  for (const auto& list : index) {
    if (!std::is_sorted(list.begin(), list.end())) return false;
  }
  return true;
}

// Jaccard over sorted-unique int vectors.
double JaccardInt(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

size_t JaccardPrefixLength(size_t size, double t) {
  if (size == 0) return 0;
  t = std::clamp(t, 0.0, 1.0);
  const size_t required_overlap = static_cast<size_t>(std::ceil(t * static_cast<double>(size)));
  if (required_overlap == 0) return size;
  return size - required_overlap + 1;
}

std::vector<int32_t> RarityRanks(const std::vector<std::vector<int32_t>>& documents,
                                 int32_t num_tokens) {
  std::vector<int64_t> frequency(static_cast<size_t>(num_tokens), 0);
  for (const auto& doc : documents) {
    for (const int32_t token : doc) {
      GL_CHECK_GE(token, 0);
      GL_CHECK_LT(token, num_tokens);
      ++frequency[static_cast<size_t>(token)];
    }
  }
  std::vector<int32_t> order(static_cast<size_t>(num_tokens));
  for (int32_t t = 0; t < num_tokens; ++t) order[static_cast<size_t>(t)] = t;
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const int64_t fa = frequency[static_cast<size_t>(a)];
    const int64_t fb = frequency[static_cast<size_t>(b)];
    if (fa != fb) return fa < fb;
    return a < b;
  });
  std::vector<int32_t> rank(static_cast<size_t>(num_tokens));
  for (int32_t r = 0; r < num_tokens; ++r) {
    rank[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  return rank;
}

std::vector<std::pair<int32_t, int32_t>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold) {
  GL_DCHECK(DocumentsAreSortedSets(documents));
  const std::vector<int32_t> rank = RarityRanks(documents, num_tokens);

  // Re-express each document in rank space, sorted so the rarest tokens
  // come first; remember original sizes for the length filter.
  std::vector<std::vector<int32_t>> ranked(documents.size());
  for (size_t d = 0; d < documents.size(); ++d) {
    ranked[d].reserve(documents[d].size());
    for (const int32_t token : documents[d]) {
      ranked[d].push_back(rank[static_cast<size_t>(token)]);
    }
    std::sort(ranked[d].begin(), ranked[d].end());
  }

  // Index: rank-token -> documents whose prefix contains it (in doc order).
  std::unordered_map<int32_t, std::vector<int32_t>> prefix_index;
  std::vector<std::pair<int32_t, int32_t>> candidates;
  uint64_t postings_scanned = 0;
  for (size_t d = 0; d < ranked.size(); ++d) {
    const size_t prefix = JaccardPrefixLength(ranked[d].size(), threshold);
    const double size_d = static_cast<double>(ranked[d].size());
    for (size_t k = 0; k < prefix; ++k) {
      const int32_t token = ranked[d][k];
      postings_scanned += prefix_index[token].size();
      for (const int32_t other : prefix_index[token]) {
        // Length filter: |smaller| >= t * |larger| is necessary for
        // Jaccard >= t. Probing doc d against earlier docs only (other < d)
        // yields each unordered pair once per shared prefix token.
        const double size_o = static_cast<double>(ranked[static_cast<size_t>(other)].size());
        const double smaller = std::min(size_d, size_o);
        const double larger = std::max(size_d, size_o);
        if (smaller + 0.5 < threshold * larger) continue;  // +0.5: integer guard.
        candidates.emplace_back(other, static_cast<int32_t>(d));
      }
      prefix_index[token].push_back(static_cast<int32_t>(d));
    }
  }
  ProbeCounter().Increment(ranked.size());
  PostingsCounter().Increment(postings_scanned);
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()), candidates.end());
  return candidates;
}

void PrefixFilterSelfJoinStreaming(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, const std::function<void(int32_t, int32_t)>& callback) {
  GL_DCHECK(DocumentsAreSortedSets(documents));
  const std::vector<int32_t> rank = RarityRanks(documents, num_tokens);

  std::vector<std::vector<int32_t>> ranked(documents.size());
  for (size_t d = 0; d < documents.size(); ++d) {
    ranked[d].reserve(documents[d].size());
    for (const int32_t token : documents[d]) {
      ranked[d].push_back(rank[static_cast<size_t>(token)]);
    }
    std::sort(ranked[d].begin(), ranked[d].end());
  }

  std::unordered_map<int32_t, std::vector<int32_t>> prefix_index;
  // last_probe[other] == current doc id marks `other` as already emitted
  // for this probe, deduplicating across shared prefix tokens without a
  // global sort.
  std::vector<int32_t> last_probe(documents.size(), -1);
  uint64_t postings_scanned = 0;
  for (size_t d = 0; d < ranked.size(); ++d) {
    const size_t prefix = JaccardPrefixLength(ranked[d].size(), threshold);
    const double size_d = static_cast<double>(ranked[d].size());
    for (size_t k = 0; k < prefix; ++k) {
      const int32_t token = ranked[d][k];
      postings_scanned += prefix_index[token].size();
      for (const int32_t other : prefix_index[token]) {
        if (last_probe[static_cast<size_t>(other)] == static_cast<int32_t>(d)) continue;
        last_probe[static_cast<size_t>(other)] = static_cast<int32_t>(d);
        const double size_o =
            static_cast<double>(ranked[static_cast<size_t>(other)].size());
        const double smaller = std::min(size_d, size_o);
        const double larger = std::max(size_d, size_o);
        if (smaller + 0.5 < threshold * larger) continue;
        callback(other, static_cast<int32_t>(d));
      }
      prefix_index[token].push_back(static_cast<int32_t>(d));
    }
  }
  ProbeCounter().Increment(ranked.size());
  PostingsCounter().Increment(postings_scanned);
}

size_t PrefixFilterSelfJoinSharded(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, ThreadPool* pool, size_t num_shards,
    const std::function<void(size_t, int32_t, int32_t)>& callback,
    ExecutionContext* ctx) {
  const size_t n = documents.size();
  if (n == 0) return 0;
  GL_DCHECK(DocumentsAreSortedSets(documents));
  const std::vector<int32_t> rank = RarityRanks(documents, num_tokens);

  // Rank-space re-expression is independent per document.
  std::vector<std::vector<int32_t>> ranked(n);
  ParallelFor(pool, n, [&](size_t d) {
    ranked[d].reserve(documents[d].size());
    for (const int32_t token : documents[d]) {
      ranked[d].push_back(rank[static_cast<size_t>(token)]);
    }
    std::sort(ranked[d].begin(), ranked[d].end());
  });

  // Full prefix index over *all* documents, built serially in document
  // order so every posting list is ascending; read-only afterwards.
  // Probing doc d keeps only postings `other < d`, which reproduces the
  // serial join's index-as-you-go candidate set exactly.
  std::vector<std::vector<int32_t>> prefix_index(static_cast<size_t>(num_tokens));
  for (size_t d = 0; d < n; ++d) {
    const size_t prefix = JaccardPrefixLength(ranked[d].size(), threshold);
    for (size_t k = 0; k < prefix; ++k) {
      prefix_index[static_cast<size_t>(ranked[d][k])].push_back(static_cast<int32_t>(d));
    }
  }
  GL_DCHECK(PostingListsAscending(prefix_index))
      << "shared prefix index must stay ascending for the other < d cut";

  num_shards = std::clamp<size_t>(num_shards, 1, n);
  const size_t shard_size = (n + num_shards - 1) / num_shards;
  std::atomic<size_t> probes_shed{0};
  ParallelFor(pool, num_shards, [&](size_t shard) {
    const size_t begin = shard * shard_size;
    const size_t end = std::min(n, begin + shard_size);
    if (ctx != nullptr) {
      FaultInjector::Default().FireWithDelay(faults::kSlowTask);
      if (FaultInjector::Default().ShouldFire(faults::kFailTask)) {
        ctx->NoteDegraded();
        probes_shed.fetch_add(end - begin, std::memory_order_relaxed);
        return;
      }
    }
    // Worker-local dedup state; each probe doc is owned by one shard.
    std::vector<int32_t> last_probe(n, -1);
    // Batched per shard: the scanned-posting count per probe doc depends
    // only on the doc (postings ascend, scan stops at the doc id), so the
    // flushed total is identical at every thread count.
    uint64_t postings_scanned = 0;
    for (size_t d = begin; d < end; ++d) {
      if (ctx != nullptr && ctx->StopRequested()) {
        probes_shed.fetch_add(end - d, std::memory_order_relaxed);
        break;
      }
      const size_t prefix = JaccardPrefixLength(ranked[d].size(), threshold);
      const double size_d = static_cast<double>(ranked[d].size());
      for (size_t k = 0; k < prefix; ++k) {
        for (const int32_t other : prefix_index[static_cast<size_t>(ranked[d][k])]) {
          if (other >= static_cast<int32_t>(d)) break;  // Postings ascend.
          ++postings_scanned;
          if (last_probe[static_cast<size_t>(other)] == static_cast<int32_t>(d)) continue;
          last_probe[static_cast<size_t>(other)] = static_cast<int32_t>(d);
          const double size_o =
              static_cast<double>(ranked[static_cast<size_t>(other)].size());
          const double smaller = std::min(size_d, size_o);
          const double larger = std::max(size_d, size_o);
          if (smaller + 0.5 < threshold * larger) continue;
          callback(shard, other, static_cast<int32_t>(d));
        }
      }
    }
    // Trailing shards can be empty (begin past the last document).
    if (end > begin) ProbeCounter().Increment(end - begin);
    PostingsCounter().Increment(postings_scanned);
  });
  const size_t shed = probes_shed.load(std::memory_order_relaxed);
  if (shed > 0 && ctx != nullptr) ctx->NoteDegraded();
  return shed;
}

std::vector<std::pair<int32_t, int32_t>> BruteForceJaccardSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, double threshold) {
  GL_DCHECK(DocumentsAreSortedSets(documents));
  std::vector<std::pair<int32_t, int32_t>> result;
  for (size_t i = 0; i < documents.size(); ++i) {
    for (size_t j = i + 1; j < documents.size(); ++j) {
      if (JaccardInt(documents[i], documents[j]) >= threshold) {
        result.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(j));
      }
    }
  }
  return result;
}

}  // namespace grouplink
