#include "index/prefix_filter.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/arena.h"
#include "common/execution_context.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics.h"

namespace grouplink {
namespace {

// Probe/posting counters shared by the join variants. Hot loops batch into
// locals and flush once per probe set, so instrumentation adds no atomic
// traffic to the posting scan itself.
Counter& ProbeCounter() {
  static Counter& counter =
      MetricsRegistry::Default().CounterRef("prefix_filter.probes");
  return counter;
}

Counter& PostingsCounter() {
  static Counter& counter =
      MetricsRegistry::Default().CounterRef("prefix_filter.postings_scanned");
  return counter;
}

// Contract predicates for GL_DCHECK. Join inputs must be sorted-unique
// token sets: duplicates skew the rarity ranks and break the linear-merge
// Jaccard verify; disorder breaks the prefix selection. Posting lists in
// the shared index must stay ascending for the `other < d` probe cut.
bool DocumentsAreSortedSets(const std::vector<std::vector<int32_t>>& documents) {
  for (const auto& doc : documents) {
    if (!std::is_sorted(doc.begin(), doc.end())) return false;
    if (std::adjacent_find(doc.begin(), doc.end()) != doc.end()) return false;
  }
  return true;
}

// CSR form of the ascending-postings contract: every [offsets[t],
// offsets[t+1]) span of the flat posting pool must be sorted.
bool PostingSpansAscending(const std::vector<size_t>& offsets,
                           Span<const int32_t> postings) {
  for (size_t t = 0; t + 1 < offsets.size(); ++t) {
    if (!std::is_sorted(postings.begin() + offsets[t],
                        postings.begin() + offsets[t + 1])) {
      return false;
    }
  }
  return true;
}

// Jaccard over sorted-unique int vectors.
double JaccardInt(const std::vector<int32_t>& a, const std::vector<int32_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0;
  size_t j = 0;
  size_t inter = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++inter;
      ++i;
      ++j;
    }
  }
  const size_t uni = a.size() + b.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

}  // namespace

size_t JaccardPrefixLength(size_t size, double t) {
  if (size == 0) return 0;
  t = std::clamp(t, 0.0, 1.0);
  const size_t required_overlap = static_cast<size_t>(std::ceil(t * static_cast<double>(size)));
  if (required_overlap == 0) return size;
  return size - required_overlap + 1;
}

std::vector<int32_t> RarityRanks(const std::vector<std::vector<int32_t>>& documents,
                                 int32_t num_tokens) {
  std::vector<int64_t> frequency(static_cast<size_t>(num_tokens), 0);
  for (const auto& doc : documents) {
    for (const int32_t token : doc) {
      GL_CHECK_GE(token, 0);
      GL_CHECK_LT(token, num_tokens);
      ++frequency[static_cast<size_t>(token)];
    }
  }
  std::vector<int32_t> order(static_cast<size_t>(num_tokens));
  for (int32_t t = 0; t < num_tokens; ++t) order[static_cast<size_t>(t)] = t;
  std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
    const int64_t fa = frequency[static_cast<size_t>(a)];
    const int64_t fb = frequency[static_cast<size_t>(b)];
    if (fa != fb) return fa < fb;
    return a < b;
  });
  std::vector<int32_t> rank(static_cast<size_t>(num_tokens));
  for (int32_t r = 0; r < num_tokens; ++r) {
    rank[static_cast<size_t>(order[static_cast<size_t>(r)])] = r;
  }
  return rank;
}

std::vector<std::pair<int32_t, int32_t>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold) {
  // The streaming join emits each unordered pair exactly once, so sorting
  // alone reproduces the documented sorted-and-deduplicated output.
  std::vector<std::pair<int32_t, int32_t>> candidates;
  PrefixFilterSelfJoinStreaming(documents, num_tokens, threshold,
                                [&](int32_t a, int32_t b) {
                                  candidates.emplace_back(a, b);
                                });
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

void PrefixFilterSelfJoinStreaming(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, const std::function<void(int32_t, int32_t)>& callback) {
  // One serial shard of the sharded join streams candidates in exactly the
  // serial emission order (the determinism contract), with identical
  // probe/posting counters — one implementation to maintain, not three.
  PrefixFilterSelfJoinSharded(documents, num_tokens, threshold,
                              /*pool=*/nullptr, /*num_shards=*/1,
                              [&](size_t, int32_t a, int32_t b) { callback(a, b); });
}

size_t PrefixFilterSelfJoinSharded(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, ThreadPool* pool, size_t num_shards,
    const std::function<void(size_t, int32_t, int32_t)>& callback,
    ExecutionContext* ctx, const std::function<void(size_t)>& shard_done) {
  const size_t n = documents.size();
  if (n == 0) return 0;
  GL_DCHECK(DocumentsAreSortedSets(documents));
  GL_CHECK_GE(num_tokens, 0);
  const std::vector<int32_t> rank = RarityRanks(documents, num_tokens);

  // Rank-space documents in one flat arena pool (CSR: doc_offsets + one
  // contiguous id array) instead of a vector-of-vectors — one allocation,
  // and probe loops walk contiguous memory. Independent per document, so
  // the fill + sort parallelizes over the preallocated segments.
  ArenaPool arena;
  std::vector<size_t> doc_offsets(n + 1, 0);
  for (size_t d = 0; d < n; ++d) {
    doc_offsets[d + 1] = doc_offsets[d] + documents[d].size();
  }
  const Span<int32_t> ranked = arena.AllocateArray<int32_t>(doc_offsets[n]);
  ParallelFor(pool, n, [&](size_t d) {
    int32_t* out = ranked.data() + doc_offsets[d];
    const std::vector<int32_t>& doc = documents[d];
    for (size_t k = 0; k < doc.size(); ++k) {
      out[k] = rank[static_cast<size_t>(doc[k])];
    }
    std::sort(out, out + doc.size());
  });
  const auto doc_size = [&](size_t d) { return doc_offsets[d + 1] - doc_offsets[d]; };

  // Full prefix index over *all* documents as flat CSR postings:
  // histogram the prefix tokens, prefix-sum into offsets, then fill in
  // document order — every posting span is ascending by construction.
  // Probing doc d keeps only postings `other < d`, which reproduces the
  // serial join's index-as-you-go candidate set exactly.
  std::vector<size_t> posting_offsets(static_cast<size_t>(num_tokens) + 1, 0);
  for (size_t d = 0; d < n; ++d) {
    const size_t prefix = JaccardPrefixLength(doc_size(d), threshold);
    for (size_t k = 0; k < prefix; ++k) {
      ++posting_offsets[static_cast<size_t>(ranked[doc_offsets[d] + k]) + 1];
    }
  }
  for (size_t t = 1; t < posting_offsets.size(); ++t) {
    posting_offsets[t] += posting_offsets[t - 1];
  }
  const Span<int32_t> postings =
      arena.AllocateArray<int32_t>(posting_offsets.back());
  {
    std::vector<size_t> cursor(posting_offsets.begin(), posting_offsets.end() - 1);
    for (size_t d = 0; d < n; ++d) {
      const size_t prefix = JaccardPrefixLength(doc_size(d), threshold);
      for (size_t k = 0; k < prefix; ++k) {
        const size_t token = static_cast<size_t>(ranked[doc_offsets[d] + k]);
        postings[cursor[token]++] = static_cast<int32_t>(d);
      }
    }
  }
  GL_DCHECK(PostingSpansAscending(posting_offsets, postings))
      << "shared prefix index must stay ascending for the other < d cut";

  num_shards = std::clamp<size_t>(num_shards, 1, n);
  const size_t shard_size = (n + num_shards - 1) / num_shards;
  std::atomic<size_t> probes_shed{0};
  ParallelFor(pool, num_shards, [&](size_t shard) {
    const size_t begin = shard * shard_size;
    const size_t end = std::min(n, begin + shard_size);
    if (ctx != nullptr) {
      FaultInjector::Default().FireWithDelay(faults::kSlowTask);
      if (FaultInjector::Default().ShouldFire(faults::kFailTask)) {
        ctx->NoteDegraded();
        probes_shed.fetch_add(end - begin, std::memory_order_relaxed);
        if (shard_done) shard_done(shard);
        return;
      }
    }
    // Worker-local dedup state; each probe doc is owned by one shard.
    std::vector<int32_t> last_probe(n, -1);
    // Batched per shard: the scanned-posting count per probe doc depends
    // only on the doc (postings ascend, the scan cuts at the doc id), so
    // the flushed total is identical at every thread count.
    uint64_t postings_scanned = 0;
    for (size_t d = begin; d < end; ++d) {
      if (ctx != nullptr && ctx->StopRequested()) {
        probes_shed.fetch_add(end - d, std::memory_order_relaxed);
        break;
      }
      const size_t prefix = JaccardPrefixLength(doc_size(d), threshold);
      const double size_d = static_cast<double>(doc_size(d));
      for (size_t k = 0; k < prefix; ++k) {
        const size_t token = static_cast<size_t>(ranked[doc_offsets[d] + k]);
        const int32_t* list = postings.data() + posting_offsets[token];
        const int32_t* list_end = postings.data() + posting_offsets[token + 1];
        // Postings ascend: one binary search finds the `other < d` cut up
        // front, so the scan loop carries no per-posting range branch.
        const int32_t* cut = std::lower_bound(list, list_end, static_cast<int32_t>(d));
        postings_scanned += static_cast<uint64_t>(cut - list);
        for (const int32_t* p = list; p != cut; ++p) {
          const int32_t other = *p;
          if (last_probe[static_cast<size_t>(other)] == static_cast<int32_t>(d)) continue;
          last_probe[static_cast<size_t>(other)] = static_cast<int32_t>(d);
          const double size_o = static_cast<double>(doc_size(static_cast<size_t>(other)));
          const double smaller = std::min(size_d, size_o);
          const double larger = std::max(size_d, size_o);
          if (smaller + 0.5 < threshold * larger) continue;
          callback(shard, other, static_cast<int32_t>(d));
        }
      }
    }
    if (shard_done) shard_done(shard);
    // Trailing shards can be empty (begin past the last document).
    if (end > begin) ProbeCounter().Increment(end - begin);
    PostingsCounter().Increment(postings_scanned);
  });
  const size_t shed = probes_shed.load(std::memory_order_relaxed);
  if (shed > 0 && ctx != nullptr) ctx->NoteDegraded();
  return shed;
}

std::vector<std::pair<int32_t, int32_t>> BruteForceJaccardSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, double threshold) {
  GL_DCHECK(DocumentsAreSortedSets(documents));
  std::vector<std::pair<int32_t, int32_t>> result;
  for (size_t i = 0; i < documents.size(); ++i) {
    for (size_t j = i + 1; j < documents.size(); ++j) {
      if (JaccardInt(documents[i], documents[j]) >= threshold) {
        result.emplace_back(static_cast<int32_t>(i), static_cast<int32_t>(j));
      }
    }
  }
  return result;
}

}  // namespace grouplink
