#ifndef GROUPLINK_INDEX_MINHASH_H_
#define GROUPLINK_INDEX_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace grouplink {

/// MinHash signatures + LSH banding: the probabilistic alternative to
/// prefix filtering for Jaccard candidate generation. A signature of k
/// independent min-hashes satisfies P[sig_i(A) == sig_i(B)] = J(A, B);
/// banding b bands of r rows makes the candidate probability an S-curve
/// 1 - (1 - J^r)^b centered near (1/b)^(1/r).
///
/// Unlike the prefix filter, LSH is *not* complete — qualifying pairs can
/// be missed with small probability — but its cost is independent of how
/// skewed the token frequencies are, which is exactly where prefix
/// filtering degrades (benchmark E8's record-join rows).
class MinHasher {
 public:
  /// `num_hashes` independent permutations, seeded deterministically.
  MinHasher(size_t num_hashes, uint64_t seed);

  /// Signature of a token-id set (need not be sorted). An empty set gets
  /// a sentinel signature that never collides with non-empty sets.
  std::vector<uint64_t> Signature(const std::vector<int32_t>& tokens) const;

  size_t num_hashes() const { return a_.size(); }

  /// Fraction of positions where the signatures agree — an unbiased
  /// estimate of the Jaccard similarity of the underlying sets.
  static double SignatureAgreement(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b);

 private:
  std::vector<uint64_t> a_;
  std::vector<uint64_t> b_;
};

/// LSH self-join: documents whose signatures agree on all rows of at
/// least one band become candidates. Signatures must all come from the
/// same MinHasher. `bands * rows_per_band` must not exceed the signature
/// length. Returns sorted unique (i, j) pairs, i < j.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands,
    size_t rows_per_band);

/// Convenience: signatures + banding over token-id documents.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> MinHashSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, size_t bands,
    size_t rows_per_band, uint64_t seed = 17);

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_MINHASH_H_
