#include "index/inverted_index.h"

#include <algorithm>

#include "common/logging.h"

namespace grouplink {

int32_t InvertedIndex::AddDocument(std::vector<int32_t> token_ids) {
  GL_DCHECK(std::is_sorted(token_ids.begin(), token_ids.end()))
      << "document token ids must be sorted";
  GL_DCHECK(std::adjacent_find(token_ids.begin(), token_ids.end()) == token_ids.end())
      << "document token ids must be unique";
  const int32_t doc_id = static_cast<int32_t>(documents_.size());
  if (!token_ids.empty()) {
    GL_CHECK_GE(token_ids.front(), 0) << "token ids must be non-negative";
    // Sorted input: the last token is the largest — one growth check.
    const size_t needed = static_cast<size_t>(token_ids.back()) + 1;
    if (postings_.size() < needed) postings_.resize(needed);
  }
  for (const int32_t token : token_ids) {
    postings_[static_cast<size_t>(token)].push_back(doc_id);
  }
  documents_.push_back(std::move(token_ids));
  removed_.push_back(0);
  return doc_id;
}

bool InvertedIndex::PostingsAreSorted() const {
  for (const std::vector<int32_t>& list : postings_) {
    if (!std::is_sorted(list.begin(), list.end())) return false;
    if (std::adjacent_find(list.begin(), list.end()) != list.end()) return false;
  }
  return true;
}

void InvertedIndex::RemoveDocument(int32_t doc) {
  GL_CHECK_GE(doc, 0);
  GL_CHECK_LT(doc, num_documents());
  if (removed_[static_cast<size_t>(doc)]) return;
  removed_[static_cast<size_t>(doc)] = 1;
  ++num_removed_;
}

bool InvertedIndex::IsRemoved(int32_t doc) const {
  GL_CHECK_GE(doc, 0);
  GL_CHECK_LT(doc, num_documents());
  return removed_[static_cast<size_t>(doc)] != 0;
}

void InvertedIndex::Compact() {
  for (std::vector<int32_t>& list : postings_) {
    list.erase(std::remove_if(list.begin(), list.end(),
                              [this](int32_t doc) {
                                return removed_[static_cast<size_t>(doc)] != 0;
                              }),
               list.end());
    if (list.empty()) list.shrink_to_fit();
  }
  for (size_t doc = 0; doc < documents_.size(); ++doc) {
    if (removed_[doc]) {
      documents_[doc].clear();
      documents_[doc].shrink_to_fit();
    }
  }
  GL_DCHECK(PostingsAreSorted()) << "Compact() must preserve posting order";
}

const std::vector<int32_t>& InvertedIndex::Postings(int32_t token) const {
  if (token < 0 || static_cast<size_t>(token) >= postings_.size()) {
    return empty_postings_;
  }
  return postings_[static_cast<size_t>(token)];
}

int64_t InvertedIndex::DocumentFrequency(int32_t token) const {
  return static_cast<int64_t>(Postings(token).size());
}

const std::vector<int32_t>& InvertedIndex::DocumentTokens(int32_t doc) const {
  GL_CHECK_GE(doc, 0);
  GL_CHECK_LT(doc, num_documents());
  return documents_[static_cast<size_t>(doc)];
}

std::vector<int32_t> InvertedIndex::DocumentsSharingToken(
    const std::vector<int32_t>& token_ids) const {
  std::vector<int32_t> result;
  for (const int32_t token : token_ids) {
    for (const int32_t doc : Postings(token)) {
      if (!removed_[static_cast<size_t>(doc)]) result.push_back(doc);
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace grouplink
