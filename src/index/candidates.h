#ifndef GROUPLINK_INDEX_CANDIDATES_H_
#define GROUPLINK_INDEX_CANDIDATES_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "index/blocking.h"

namespace grouplink {

/// Candidate generation lifts record-level joins to group pairs: two
/// groups become a candidate pair when at least one record of one shares
/// a record-level candidate (blocking key or prefix-filter hit) with a
/// record of the other. A group pair with no record-level hit cannot have
/// any similarity-graph edge, so its BM score is 0 and it is safe to skip
/// whenever the group threshold Θ > 0.
struct GroupCandidateStats {
  /// Record-level candidate pairs inspected.
  size_t record_pairs = 0;
  /// Group pairs produced.
  size_t group_pairs = 0;
};

/// Every unordered pair (i < j) of `num_groups` groups.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> AllGroupPairs(int32_t num_groups);

/// Group candidates via the prefix-filter Jaccard self-join over record
/// token sets at `record_threshold` (see index/prefix_filter.h).
/// `record_group[r]` maps record r to its group id in [0, num_groups).
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromRecordJoin(
    const std::vector<std::vector<int32_t>>& record_tokens,
    const std::vector<int32_t>& record_group, int32_t num_tokens, int32_t num_groups,
    double record_threshold, GroupCandidateStats* stats = nullptr);

/// Group candidates via a Blocker over record texts.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromBlocking(
    BlockingScheme scheme, const std::vector<std::string>& record_texts,
    const std::vector<int32_t>& record_group, int32_t num_groups,
    GroupCandidateStats* stats = nullptr);

/// Group candidates via a MinHash/LSH self-join over record token sets
/// (see index/minhash.h). Probabilistic: qualifying pairs can be missed
/// with small probability, but the cost is insensitive to token-frequency
/// skew. `record_group[r]` maps records to groups.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromMinHash(
    const std::vector<std::vector<int32_t>>& record_tokens,
    const std::vector<int32_t>& record_group, size_t bands, size_t rows_per_band,
    GroupCandidateStats* stats = nullptr);

/// Group candidates by blocking directly on group labels (author name
/// variant, household address, ...) — the classic cheap scheme: two groups
/// are candidates iff their labels share a blocking key. Aggressive
/// schemes (kFirstToken) trade recall for far smaller candidate sets;
/// benchmark E8 quantifies the trade-off.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromLabelBlocking(
    BlockingScheme scheme, const std::vector<std::string>& group_labels,
    GroupCandidateStats* stats = nullptr);

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_CANDIDATES_H_
