#ifndef GROUPLINK_INDEX_INVERTED_INDEX_H_
#define GROUPLINK_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <vector>

namespace grouplink {

/// Token-id -> posting-list index over a corpus of documents, where a
/// document is a sorted, deduplicated vector of token ids. Posting lists
/// are sorted by document id (documents are appended in id order).
///
/// This is the data structure behind blocking and set-similarity joins:
/// it turns "which documents share a token with d?" into posting-list
/// lookups instead of all-pairs comparisons.
///
/// Thread safety (shared-read contract, audited for the serving layer):
/// the class does no internal synchronization. Every `const` member —
/// Postings, DocumentFrequency, DocumentTokens, DocumentsSharingToken,
/// IsRemoved, the counts, PostingsAreSorted — only reads the index, so
/// any number of threads may call them concurrently *provided no thread
/// is inside a mutator* (AddDocument, RemoveDocument, Compact).
/// Mutators grow the posting table and splice vectors; racing a reader
/// against one is undefined behavior, not just staleness. CorpusSnapshot
/// relies on exactly this contract: it copies the index into an
/// immutable epoch, after which all access is const and lock-free.
class InvertedIndex {
 public:
  /// Adds a document and returns its id (sequential from 0).
  /// `token_ids` must be sorted and unique; enforced with GL_DCHECK.
  int32_t AddDocument(std::vector<int32_t> token_ids);

  /// Tombstones `doc`: it stops appearing in DocumentsSharingToken
  /// results immediately; its posting entries linger in Postings() until
  /// Compact() reclaims them. Document ids are never reused.
  void RemoveDocument(int32_t doc);

  /// True if `doc` was tombstoned by RemoveDocument.
  [[nodiscard]] bool IsRemoved(int32_t doc) const;

  /// Documents tombstoned since construction (compaction keeps the count;
  /// removed ids stay dead forever).
  [[nodiscard]] int32_t num_removed() const { return num_removed_; }

  /// Erases every tombstoned document's posting entries and token list,
  /// reclaiming the space. Postings stay sorted by document id.
  void Compact();

  /// Documents containing `token` (empty list if none). May include
  /// tombstoned ids until Compact().
  [[nodiscard]] const std::vector<int32_t>& Postings(int32_t token) const;

  /// Number of documents containing `token` (including tombstoned ones
  /// until Compact()).
  [[nodiscard]] int64_t DocumentFrequency(int32_t token) const;

  /// Token set of a document (as passed to AddDocument).
  [[nodiscard]] const std::vector<int32_t>& DocumentTokens(int32_t doc) const;

  [[nodiscard]] int32_t num_documents() const { return static_cast<int32_t>(documents_.size()); }

  /// Returns document ids sharing at least one token with `token_ids`,
  /// sorted and deduplicated (includes the probe document itself if it was
  /// added). Tombstoned documents never appear. The basic token-blocking
  /// primitive.
  [[nodiscard]] std::vector<int32_t> DocumentsSharingToken(const std::vector<int32_t>& token_ids) const;

  /// Contract predicate: every posting list is sorted by document id with
  /// no duplicates. Always true for a correctly maintained index (ids are
  /// appended in order and Compact preserves order); GL_DCHECKed after
  /// mutations and exposed so tests can assert it directly.
  [[nodiscard]] bool PostingsAreSorted() const;

 private:
  /// Dense token-id-indexed posting table (token ids come from a
  /// Vocabulary, so the id space is compact): direct indexing instead of
  /// hashing on every probe. Grown on demand by AddDocument.
  std::vector<std::vector<int32_t>> postings_;
  std::vector<std::vector<int32_t>> documents_;
  std::vector<char> removed_;
  int32_t num_removed_ = 0;
  std::vector<int32_t> empty_postings_;
};

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_INVERTED_INDEX_H_
