#ifndef GROUPLINK_INDEX_INVERTED_INDEX_H_
#define GROUPLINK_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace grouplink {

/// Token-id -> posting-list index over a corpus of documents, where a
/// document is a sorted, deduplicated vector of token ids. Posting lists
/// are sorted by document id (documents are appended in id order).
///
/// This is the data structure behind blocking and set-similarity joins:
/// it turns "which documents share a token with d?" into posting-list
/// lookups instead of all-pairs comparisons.
class InvertedIndex {
 public:
  /// Adds a document and returns its id (sequential from 0).
  /// `token_ids` must be sorted and unique; enforced with GL_DCHECK.
  int32_t AddDocument(std::vector<int32_t> token_ids);

  /// Documents containing `token` (empty list if none).
  const std::vector<int32_t>& Postings(int32_t token) const;

  /// Number of documents containing `token`.
  int64_t DocumentFrequency(int32_t token) const;

  /// Token set of a document (as passed to AddDocument).
  const std::vector<int32_t>& DocumentTokens(int32_t doc) const;

  int32_t num_documents() const { return static_cast<int32_t>(documents_.size()); }

  /// Returns document ids sharing at least one token with `token_ids`,
  /// sorted and deduplicated (includes the probe document itself if it was
  /// added). The basic token-blocking primitive.
  std::vector<int32_t> DocumentsSharingToken(const std::vector<int32_t>& token_ids) const;

 private:
  std::unordered_map<int32_t, std::vector<int32_t>> postings_;
  std::vector<std::vector<int32_t>> documents_;
  std::vector<int32_t> empty_postings_;
};

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_INVERTED_INDEX_H_
