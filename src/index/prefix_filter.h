#ifndef GROUPLINK_INDEX_PREFIX_FILTER_H_
#define GROUPLINK_INDEX_PREFIX_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace grouplink {

class ExecutionContext;

/// Prefix-filtering set-similarity self-join (the SSJoin / AllPairs family
/// of techniques the paper leans on for scalable candidate generation).
///
/// Key fact: order the universe of tokens by a fixed global order
/// (rarest-first works best). If Jaccard(x, y) >= t, then x and y must
/// share a token within the first
///     prefix(x) = |x| - ceil(t * |x|) + 1
/// tokens of x (and likewise for y). So indexing only prefixes yields a
/// candidate set guaranteed to contain every qualifying pair — the
/// completeness property is property-tested against a brute-force join.
///
/// Thread safety (shared-read contract, audited for the serving layer):
/// every function here is a pure read of its `documents` input — none
/// mutates or retains it — so concurrent joins over the same corpus are
/// safe as long as the caller does not mutate `documents` mid-call. The
/// sharded join's internal prefix index is built once and then read-only
/// across all probe shards; the only cross-thread writes are each
/// shard's own callback state, which the API confines to one worker per
/// shard by contract.

/// Returns the number of prefix tokens to index for a set of `size`
/// elements under Jaccard threshold `t` (0 for an empty set).
[[nodiscard]] size_t JaccardPrefixLength(size_t size, double t);

/// A global token order: token ids sorted by ascending frequency in
/// `documents` (ties by id). Returns rank[token_id] for dense token ids in
/// [0, num_tokens).
[[nodiscard]] std::vector<int32_t> RarityRanks(const std::vector<std::vector<int32_t>>& documents,
                                 int32_t num_tokens);

/// Candidate pairs (i < j) of documents that may satisfy
/// Jaccard(documents[i], documents[j]) >= `threshold`.
///
/// Documents are sorted-unique token-id vectors over dense ids in
/// [0, num_tokens). Applies both the prefix filter and the length filter
/// (|y| >= t * |x|). The result is sorted and deduplicated; it is a
/// superset of the true result and typically far smaller than all pairs.
/// Thin wrapper over the streaming join (collect + sort).
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> PrefixFilterSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold);

/// Streaming variant of PrefixFilterSelfJoin: invokes `callback(i, j)`
/// (i < j) exactly once per candidate pair, without materializing or
/// sorting the candidate set. Preferred for large joins — the edge-join
/// linkage strategy verifies each candidate inline as it streams out.
/// Thin wrapper over the sharded join with one serial shard; emission
/// order and counters are identical (the sharded determinism contract).
void PrefixFilterSelfJoinStreaming(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, const std::function<void(int32_t, int32_t)>& callback);

/// Sharded parallel variant of the streaming join. The prefix inverted
/// index is built once up front (then read-only); probe documents are
/// split into `num_shards` contiguous ascending ranges and probed across
/// `pool` (inline, in shard order, when `pool` is null or single-thread).
/// `callback(shard, i, j)` fires exactly once per candidate pair (i < j),
/// concurrently across shards but sequentially within one shard — each
/// shard typically appends to its own buffer, no locking needed.
///
/// Determinism contract: every probe document belongs to exactly one
/// shard, shards cover ascending probe ranges, and within a shard
/// candidates stream in the same order as the serial join. Concatenating
/// the per-shard outputs in shard index order therefore reproduces the
/// serial emission order exactly, for every `num_shards` and thread
/// count. The candidate *set* is identical to PrefixFilterSelfJoinStreaming
/// (property-tested).
///
/// With a non-null `ctx`, polls StopRequested() before each probe
/// document and sheds the remainder of every shard once it trips (a
/// shed probe only removes candidate pairs — subset-safe), and honors
/// the thread_pool.slow_task / thread_pool.fail_task fault points per
/// shard. Returns the number of probe documents shed (0 when the join
/// ran to completion or ctx is null).
///
/// `shard_done(shard)`, when set, fires on the shard's worker after its
/// last callback (including after a stop-request break) — callers that
/// batch candidates per shard use it to flush the final batch.
size_t PrefixFilterSelfJoinSharded(
    const std::vector<std::vector<int32_t>>& documents, int32_t num_tokens,
    double threshold, ThreadPool* pool, size_t num_shards,
    const std::function<void(size_t, int32_t, int32_t)>& callback,
    ExecutionContext* ctx = nullptr,
    const std::function<void(size_t)>& shard_done = {});

/// Reference implementation: all pairs with exact Jaccard >= threshold.
/// O(n²); used by tests and as the no-index baseline in benchmarks.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> BruteForceJaccardSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, double threshold);

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_PREFIX_FILTER_H_
