#ifndef GROUPLINK_INDEX_BLOCKING_H_
#define GROUPLINK_INDEX_BLOCKING_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace grouplink {

/// Blocking reduces the quadratic comparison space: items only compare
/// against items sharing a blocking key. Schemes trade recall (does every
/// true pair share a key?) against block sizes (how many comparisons
/// remain?). Benchmark E8 measures both.
enum class BlockingScheme {
  kNone,         // No blocking: every pair is a candidate.
  kToken,        // One key per word token.
  kFirstToken,   // Single key: the lexicographically first token.
  kTokenPrefix,  // One key per 4-character token prefix.
  kSoundex,      // One key per token's Soundex code (phonetic).
};

/// Returns a human-readable scheme name ("token", "soundex", ...).
const char* BlockingSchemeName(BlockingScheme scheme);

/// Computes the blocking keys of `text` under `scheme` (kNone yields one
/// universal key so everything lands in a single block).
[[nodiscard]] std::vector<std::string> BlockingKeys(BlockingScheme scheme, std::string_view text);

/// Sorted-neighborhood method: items are ordered by a sorting key (here
/// the normalized token-sorted text) and every pair within a sliding
/// window of size `window` becomes a candidate. Unlike key-based
/// blocking, near-miss keys still land near each other, so single typos
/// rarely separate true pairs; the candidate count is ~n·(window-1)/2 by
/// construction. Returns sorted unique (i, j) pairs with i < j being
/// *item ids*, not positions.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> SortedNeighborhoodPairs(
    const std::vector<std::string>& texts, size_t window);

/// Accumulates (key, item) assignments and enumerates candidate pairs.
class Blocker {
 public:
  explicit Blocker(BlockingScheme scheme) : scheme_(scheme) {}

  /// Files `item` under every key of `text`.
  void Add(int32_t item, std::string_view text);

  /// All unordered item pairs (i < j) co-occurring in some block,
  /// deduplicated and sorted.
  std::vector<std::pair<int32_t, int32_t>> CandidatePairs() const;

  /// Number of blocks and the size of the largest one (diagnostics).
  size_t num_blocks() const { return blocks_.size(); }
  size_t max_block_size() const;

  BlockingScheme scheme() const { return scheme_; }

 private:
  BlockingScheme scheme_;
  std::map<std::string, std::vector<int32_t>> blocks_;
};

}  // namespace grouplink

#endif  // GROUPLINK_INDEX_BLOCKING_H_
