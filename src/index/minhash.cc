#include "index/minhash.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/string_util.h"

namespace grouplink {
namespace {

constexpr uint64_t kEmptySentinel = std::numeric_limits<uint64_t>::max();

// Strong 64-bit mixer applied to (a * token + b).
uint64_t Mix(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

MinHasher::MinHasher(size_t num_hashes, uint64_t seed) {
  GL_CHECK_GE(num_hashes, 1u);
  Rng rng(seed);
  a_.reserve(num_hashes);
  b_.reserve(num_hashes);
  for (size_t i = 0; i < num_hashes; ++i) {
    a_.push_back(rng.Next() | 1);  // Odd multiplier.
    b_.push_back(rng.Next());
  }
}

std::vector<uint64_t> MinHasher::Signature(const std::vector<int32_t>& tokens) const {
  std::vector<uint64_t> signature(a_.size(), kEmptySentinel);
  for (const int32_t token : tokens) {
    const uint64_t t = static_cast<uint64_t>(static_cast<uint32_t>(token)) + 1;
    for (size_t h = 0; h < a_.size(); ++h) {
      const uint64_t value = Mix(a_[h] * t + b_[h]);
      signature[h] = std::min(signature[h], value);
    }
  }
  return signature;
}

double MinHasher::SignatureAgreement(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  GL_CHECK_EQ(a.size(), b.size());
  GL_CHECK(!a.empty());
  size_t agree = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i] && a[i] != kEmptySentinel) ++agree;
  }
  return static_cast<double>(agree) / static_cast<double>(a.size());
}

std::vector<std::pair<int32_t, int32_t>> LshCandidatePairs(
    const std::vector<std::vector<uint64_t>>& signatures, size_t bands,
    size_t rows_per_band) {
  GL_CHECK_GE(bands, 1u);
  GL_CHECK_GE(rows_per_band, 1u);
  if (!signatures.empty()) {
    GL_CHECK_LE(bands * rows_per_band, signatures[0].size());
  }
  std::vector<std::pair<int32_t, int32_t>> pairs;
  for (size_t band = 0; band < bands; ++band) {
    // Bucket documents by the hash of this band's signature slice.
    std::unordered_map<uint64_t, std::vector<int32_t>> buckets;
    for (size_t d = 0; d < signatures.size(); ++d) {
      uint64_t key = 0x2545f4914f6cdd1dULL + band;
      bool empty_document = true;
      for (size_t r = 0; r < rows_per_band; ++r) {
        const uint64_t row = signatures[d][band * rows_per_band + r];
        if (row != kEmptySentinel) empty_document = false;
        key = HashCombine(key, row);
      }
      if (empty_document) continue;  // Empty sets never collide.
      buckets[key].push_back(static_cast<int32_t>(d));
    }
    for (const auto& [key, docs] : buckets) {
      for (size_t i = 0; i < docs.size(); ++i) {
        for (size_t j = i + 1; j < docs.size(); ++j) {
          pairs.emplace_back(docs[i], docs[j]);
        }
      }
    }
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  static Counter& m_candidates =
      MetricsRegistry::Default().CounterRef("minhash.candidates");
  m_candidates.Increment(pairs.size());
  return pairs;
}

std::vector<std::pair<int32_t, int32_t>> MinHashSelfJoin(
    const std::vector<std::vector<int32_t>>& documents, size_t bands,
    size_t rows_per_band, uint64_t seed) {
  const MinHasher hasher(bands * rows_per_band, seed);
  std::vector<std::vector<uint64_t>> signatures;
  signatures.reserve(documents.size());
  for (const auto& doc : documents) signatures.push_back(hasher.Signature(doc));
  static Counter& m_signatures =
      MetricsRegistry::Default().CounterRef("minhash.signatures");
  m_signatures.Increment(signatures.size());
  return LshCandidatePairs(signatures, bands, rows_per_band);
}

}  // namespace grouplink
