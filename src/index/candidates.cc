#include "index/candidates.h"

#include <algorithm>

#include "common/logging.h"
#include "index/minhash.h"
#include "index/prefix_filter.h"

namespace grouplink {
namespace {

// Maps record pairs to unordered group pairs, dropping intra-group pairs,
// then sorts/dedups.
std::vector<std::pair<int32_t, int32_t>> LiftToGroupPairs(
    const std::vector<std::pair<int32_t, int32_t>>& record_pairs,
    const std::vector<int32_t>& record_group) {
  std::vector<std::pair<int32_t, int32_t>> group_pairs;
  group_pairs.reserve(record_pairs.size());
  for (const auto& [r1, r2] : record_pairs) {
    const int32_t g1 = record_group[static_cast<size_t>(r1)];
    const int32_t g2 = record_group[static_cast<size_t>(r2)];
    if (g1 == g2) continue;
    group_pairs.emplace_back(std::min(g1, g2), std::max(g1, g2));
  }
  std::sort(group_pairs.begin(), group_pairs.end());
  group_pairs.erase(std::unique(group_pairs.begin(), group_pairs.end()),
                    group_pairs.end());
  return group_pairs;
}

}  // namespace

std::vector<std::pair<int32_t, int32_t>> AllGroupPairs(int32_t num_groups) {
  std::vector<std::pair<int32_t, int32_t>> pairs;
  pairs.reserve(static_cast<size_t>(num_groups) * (num_groups > 0 ? num_groups - 1 : 0) / 2);
  for (int32_t i = 0; i < num_groups; ++i) {
    for (int32_t j = i + 1; j < num_groups; ++j) {
      pairs.emplace_back(i, j);
    }
  }
  return pairs;
}

std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromRecordJoin(
    const std::vector<std::vector<int32_t>>& record_tokens,
    const std::vector<int32_t>& record_group, int32_t num_tokens, int32_t num_groups,
    double record_threshold, GroupCandidateStats* stats) {
  GL_CHECK_EQ(record_tokens.size(), record_group.size());
  const auto record_pairs =
      PrefixFilterSelfJoin(record_tokens, num_tokens, record_threshold);
  auto group_pairs = LiftToGroupPairs(record_pairs, record_group);
  for (const auto& [g1, g2] : group_pairs) {
    GL_CHECK_GE(g1, 0);
    GL_CHECK_LT(g2, num_groups);
  }
  if (stats != nullptr) {
    stats->record_pairs = record_pairs.size();
    stats->group_pairs = group_pairs.size();
  }
  return group_pairs;
}

std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromBlocking(
    BlockingScheme scheme, const std::vector<std::string>& record_texts,
    const std::vector<int32_t>& record_group, int32_t num_groups,
    GroupCandidateStats* stats) {
  GL_CHECK_EQ(record_texts.size(), record_group.size());
  if (scheme == BlockingScheme::kNone) {
    auto pairs = AllGroupPairs(num_groups);
    if (stats != nullptr) {
      stats->record_pairs = 0;
      stats->group_pairs = pairs.size();
    }
    return pairs;
  }
  Blocker blocker(scheme);
  for (size_t r = 0; r < record_texts.size(); ++r) {
    blocker.Add(static_cast<int32_t>(r), record_texts[r]);
  }
  const auto record_pairs = blocker.CandidatePairs();
  auto group_pairs = LiftToGroupPairs(record_pairs, record_group);
  if (stats != nullptr) {
    stats->record_pairs = record_pairs.size();
    stats->group_pairs = group_pairs.size();
  }
  return group_pairs;
}

std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromMinHash(
    const std::vector<std::vector<int32_t>>& record_tokens,
    const std::vector<int32_t>& record_group, size_t bands, size_t rows_per_band,
    GroupCandidateStats* stats) {
  GL_CHECK_EQ(record_tokens.size(), record_group.size());
  const auto record_pairs = MinHashSelfJoin(record_tokens, bands, rows_per_band);
  auto group_pairs = LiftToGroupPairs(record_pairs, record_group);
  if (stats != nullptr) {
    stats->record_pairs = record_pairs.size();
    stats->group_pairs = group_pairs.size();
  }
  return group_pairs;
}

std::vector<std::pair<int32_t, int32_t>> GroupCandidatesFromLabelBlocking(
    BlockingScheme scheme, const std::vector<std::string>& group_labels,
    GroupCandidateStats* stats) {
  Blocker blocker(scheme);
  for (size_t g = 0; g < group_labels.size(); ++g) {
    blocker.Add(static_cast<int32_t>(g), group_labels[g]);
  }
  auto pairs = blocker.CandidatePairs();
  if (stats != nullptr) {
    stats->record_pairs = 0;
    stats->group_pairs = pairs.size();
  }
  return pairs;
}

}  // namespace grouplink
