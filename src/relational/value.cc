#include "relational/value.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace grouplink {

int64_t Value::AsInt() const {
  GL_CHECK(is_int()) << "Value is not an int: " << ToString();
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
  GL_CHECK(is_double()) << "Value is not numeric: " << ToString();
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  GL_CHECK(is_string()) << "Value is not a string: " << ToString();
  return std::get<std::string>(data_);
}

bool Value::operator==(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  // Numeric cross-type equality.
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    return AsDouble() == other.AsDouble();
  }
  if (is_string() && other.is_string()) return AsString() == other.AsString();
  return false;
}

bool Value::operator<(const Value& other) const {
  // NULL < numbers < strings; within kinds, natural order.
  const auto rank = [](const Value& v) {
    if (v.is_null()) return 0;
    if (v.is_int() || v.is_double()) return 1;
    return 2;
  };
  if (rank(*this) != rank(other)) return rank(*this) < rank(other);
  if (is_null()) return false;
  if (rank(*this) == 1) return AsDouble() < other.AsDouble();
  return AsString() < other.AsString();
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(data_));
  if (is_double()) return FormatDouble(std::get<double>(data_), 6);
  return std::get<std::string>(data_);
}

uint64_t Value::Hash() const {
  if (is_null()) return 0x9ae16a3b2f90404fULL;
  if (is_int() || is_double()) {
    // Hash numerics through double so 1 and 1.0 collide (== consistent).
    const double d = AsDouble();
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    if (d == 0.0) bits = 0;  // +0.0 / -0.0.
    return HashCombine(0x1234, bits);
  }
  return Fingerprint64(AsString());
}

int32_t Schema::ColumnIndex(const std::string& name) const {
  for (size_t c = 0; c < names.size(); ++c) {
    if (names[c] == name) return static_cast<int32_t>(c);
  }
  return -1;
}

}  // namespace grouplink
