#include "relational/operators.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/logging.h"
#include "common/string_util.h"

namespace grouplink {
namespace {

// Hashes selected key columns of a row, consistent with Value::operator==.
uint64_t HashKeys(const Row& row, const std::vector<int32_t>& keys) {
  uint64_t hash = 0x51ed270b;
  for (const int32_t k : keys) {
    hash = HashCombine(hash, row[static_cast<size_t>(k)].Hash());
  }
  return hash;
}

bool KeysEqual(const Row& a, const std::vector<int32_t>& a_keys, const Row& b,
               const std::vector<int32_t>& b_keys) {
  for (size_t i = 0; i < a_keys.size(); ++i) {
    if (!(a[static_cast<size_t>(a_keys[i])] == b[static_cast<size_t>(b_keys[i])])) {
      return false;
    }
  }
  return true;
}

class ScanOperator final : public Operator {
 public:
  explicit ScanOperator(const Table* table) : table_(table) {
    GL_CHECK(table != nullptr);
  }
  const Schema& OutputSchema() const override { return table_->schema(); }
  void Open() override { position_ = 0; }
  bool Next(Row* row) override {
    if (position_ >= table_->num_rows()) return false;
    *row = table_->rows()[position_++];
    return true;
  }
  void Close() override {}

 private:
  const Table* table_;
  size_t position_ = 0;
};

class FilterOperator final : public Operator {
 public:
  FilterOperator(OperatorPtr input, std::function<bool(const Row&)> predicate)
      : input_(std::move(input)), predicate_(std::move(predicate)) {}
  const Schema& OutputSchema() const override { return input_->OutputSchema(); }
  void Open() override { input_->Open(); }
  bool Next(Row* row) override {
    while (input_->Next(row)) {
      if (predicate_(*row)) return true;
    }
    return false;
  }
  void Close() override { input_->Close(); }

 private:
  OperatorPtr input_;
  std::function<bool(const Row&)> predicate_;
};

class ProjectOperator final : public Operator {
 public:
  ProjectOperator(OperatorPtr input, std::vector<ProjectColumn> columns)
      : input_(std::move(input)), columns_(std::move(columns)) {
    for (const ProjectColumn& column : columns_) {
      schema_.names.push_back(column.name);
      schema_.types.push_back(column.type);
    }
  }
  const Schema& OutputSchema() const override { return schema_; }
  void Open() override { input_->Open(); }
  bool Next(Row* row) override {
    Row in;
    if (!input_->Next(&in)) return false;
    row->clear();
    row->reserve(columns_.size());
    for (const ProjectColumn& column : columns_) row->push_back(column.compute(in));
    return true;
  }
  void Close() override { input_->Close(); }

 private:
  OperatorPtr input_;
  std::vector<ProjectColumn> columns_;
  Schema schema_;
};

class HashJoinOperator final : public Operator {
 public:
  HashJoinOperator(OperatorPtr left, OperatorPtr right, std::vector<int32_t> left_keys,
                   std::vector<int32_t> right_keys)
      : left_(std::move(left)),
        right_(std::move(right)),
        left_keys_(std::move(left_keys)),
        right_keys_(std::move(right_keys)) {
    GL_CHECK_EQ(left_keys_.size(), right_keys_.size());
    const Schema& ls = left_->OutputSchema();
    const Schema& rs = right_->OutputSchema();
    schema_ = ls;
    for (size_t c = 0; c < rs.num_columns(); ++c) {
      std::string name = rs.names[c];
      if (schema_.ColumnIndex(name) >= 0) name += "_r";
      schema_.names.push_back(std::move(name));
      schema_.types.push_back(rs.types[c]);
    }
  }
  const Schema& OutputSchema() const override { return schema_; }

  void Open() override {
    // Build side: the right input.
    right_->Open();
    hash_table_.clear();
    build_rows_.clear();
    Row row;
    while (right_->Next(&row)) {
      const uint64_t hash = HashKeys(row, right_keys_);
      hash_table_[hash].push_back(build_rows_.size());
      build_rows_.push_back(row);
    }
    right_->Close();
    left_->Open();
    have_probe_ = false;
  }

  bool Next(Row* row) override {
    while (true) {
      if (!have_probe_) {
        if (!left_->Next(&probe_)) return false;
        const auto it = hash_table_.find(HashKeys(probe_, left_keys_));
        matches_ = it == hash_table_.end() ? nullptr : &it->second;
        match_index_ = 0;
        have_probe_ = true;
      }
      while (matches_ != nullptr && match_index_ < matches_->size()) {
        const Row& build = build_rows_[(*matches_)[match_index_++]];
        if (!KeysEqual(probe_, left_keys_, build, right_keys_)) continue;
        *row = probe_;
        row->insert(row->end(), build.begin(), build.end());
        return true;
      }
      have_probe_ = false;
    }
  }

  void Close() override {
    left_->Close();
    hash_table_.clear();
    build_rows_.clear();
  }

 private:
  OperatorPtr left_;
  OperatorPtr right_;
  std::vector<int32_t> left_keys_;
  std::vector<int32_t> right_keys_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<size_t>> hash_table_;
  std::vector<Row> build_rows_;
  Row probe_;
  const std::vector<size_t>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool have_probe_ = false;
};

// Running state of one aggregate within one group.
struct AggregateState {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t count = 0;
};

class GroupAggregateOperator final : public Operator {
 public:
  GroupAggregateOperator(OperatorPtr input, std::vector<int32_t> group_columns,
                         std::vector<AggregateSpec> aggregates)
      : input_(std::move(input)),
        group_columns_(std::move(group_columns)),
        aggregates_(std::move(aggregates)) {
    const Schema& in = input_->OutputSchema();
    for (const int32_t c : group_columns_) {
      schema_.names.push_back(in.names[static_cast<size_t>(c)]);
      schema_.types.push_back(in.types[static_cast<size_t>(c)]);
    }
    for (const AggregateSpec& spec : aggregates_) {
      schema_.names.push_back(spec.output_name);
      schema_.types.push_back(spec.kind == AggregateKind::kCount ? ColumnType::kInt
                                                                 : ColumnType::kDouble);
    }
  }
  const Schema& OutputSchema() const override { return schema_; }

  void Open() override {
    input_->Open();
    groups_.clear();
    group_keys_.clear();
    group_states_.clear();
    Row row;
    while (input_->Next(&row)) {
      const uint64_t hash = HashKeys(row, group_columns_);
      size_t group_index = static_cast<size_t>(-1);
      auto& bucket = groups_[hash];
      for (const size_t candidate : bucket) {
        if (KeysEqual(row, group_columns_, group_keys_[candidate], identity_keys_())) {
          group_index = candidate;
          break;
        }
      }
      if (group_index == static_cast<size_t>(-1)) {
        group_index = group_keys_.size();
        Row key;
        key.reserve(group_columns_.size());
        for (const int32_t c : group_columns_) key.push_back(row[static_cast<size_t>(c)]);
        group_keys_.push_back(std::move(key));
        group_states_.emplace_back(aggregates_.size());
        bucket.push_back(group_index);
      }
      std::vector<AggregateState>& states = group_states_[group_index];
      for (size_t a = 0; a < aggregates_.size(); ++a) {
        AggregateState& state = states[a];
        ++state.count;
        if (aggregates_[a].kind == AggregateKind::kCount) continue;
        const double v =
            row[static_cast<size_t>(aggregates_[a].column)].AsDouble();
        state.sum += v;
        state.min = std::min(state.min, v);
        state.max = std::max(state.max, v);
      }
    }
    input_->Close();
    // Global aggregate over empty input still yields one row.
    if (group_columns_.empty() && group_keys_.empty()) {
      group_keys_.emplace_back();
      group_states_.emplace_back(aggregates_.size());
    }
    emit_index_ = 0;
  }

  bool Next(Row* row) override {
    if (emit_index_ >= group_keys_.size()) return false;
    const size_t g = emit_index_++;
    *row = group_keys_[g];
    for (size_t a = 0; a < aggregates_.size(); ++a) {
      const AggregateState& state = group_states_[g][a];
      switch (aggregates_[a].kind) {
        case AggregateKind::kCount:
          row->push_back(state.count);
          break;
        case AggregateKind::kSum:
          row->push_back(state.count == 0 ? Value() : Value(state.sum));
          break;
        case AggregateKind::kMin:
          row->push_back(state.count == 0 ? Value() : Value(state.min));
          break;
        case AggregateKind::kMax:
          row->push_back(state.count == 0 ? Value() : Value(state.max));
          break;
        case AggregateKind::kAvg:
          row->push_back(state.count == 0
                             ? Value()
                             : Value(state.sum / static_cast<double>(state.count)));
          break;
      }
    }
    return true;
  }

  void Close() override {}

 private:
  // Key columns of the stored group keys are 0..k-1 by construction.
  const std::vector<int32_t>& identity_keys_() {
    if (identity_.size() != group_columns_.size()) {
      identity_.resize(group_columns_.size());
      for (size_t i = 0; i < identity_.size(); ++i) {
        identity_[i] = static_cast<int32_t>(i);
      }
    }
    return identity_;
  }

  OperatorPtr input_;
  std::vector<int32_t> group_columns_;
  std::vector<AggregateSpec> aggregates_;
  Schema schema_;
  std::unordered_map<uint64_t, std::vector<size_t>> groups_;
  std::vector<Row> group_keys_;
  std::vector<std::vector<AggregateState>> group_states_;
  std::vector<int32_t> identity_;
  size_t emit_index_ = 0;
};

class SortOperator final : public Operator {
 public:
  SortOperator(OperatorPtr input, std::vector<int32_t> sort_columns, bool descending)
      : input_(std::move(input)),
        sort_columns_(std::move(sort_columns)),
        descending_(descending) {}
  const Schema& OutputSchema() const override { return input_->OutputSchema(); }

  void Open() override {
    input_->Open();
    rows_.clear();
    Row row;
    while (input_->Next(&row)) rows_.push_back(row);
    input_->Close();
    std::stable_sort(rows_.begin(), rows_.end(), [this](const Row& a, const Row& b) {
      for (const int32_t c : sort_columns_) {
        const Value& va = a[static_cast<size_t>(c)];
        const Value& vb = b[static_cast<size_t>(c)];
        if (va < vb) return !descending_;
        if (vb < va) return descending_;
      }
      return false;
    });
    emit_index_ = 0;
  }

  bool Next(Row* row) override {
    if (emit_index_ >= rows_.size()) return false;
    *row = rows_[emit_index_++];
    return true;
  }
  void Close() override { rows_.clear(); }

 private:
  OperatorPtr input_;
  std::vector<int32_t> sort_columns_;
  bool descending_;
  std::vector<Row> rows_;
  size_t emit_index_ = 0;
};

class DistinctOperator final : public Operator {
 public:
  explicit DistinctOperator(OperatorPtr input) : input_(std::move(input)) {
    const size_t columns = input_->OutputSchema().num_columns();
    all_columns_.resize(columns);
    for (size_t c = 0; c < columns; ++c) all_columns_[c] = static_cast<int32_t>(c);
  }
  const Schema& OutputSchema() const override { return input_->OutputSchema(); }
  void Open() override {
    input_->Open();
    seen_.clear();
    seen_rows_.clear();
  }
  bool Next(Row* row) override {
    while (input_->Next(row)) {
      const uint64_t hash = HashKeys(*row, all_columns_);
      auto& bucket = seen_[hash];
      bool duplicate = false;
      for (const size_t candidate : bucket) {
        if (KeysEqual(*row, all_columns_, seen_rows_[candidate], all_columns_)) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      bucket.push_back(seen_rows_.size());
      seen_rows_.push_back(*row);
      return true;
    }
    return false;
  }
  void Close() override {
    input_->Close();
    seen_.clear();
    seen_rows_.clear();
  }

 private:
  OperatorPtr input_;
  std::vector<int32_t> all_columns_;
  std::unordered_map<uint64_t, std::vector<size_t>> seen_;
  std::vector<Row> seen_rows_;
};

class LimitOperator final : public Operator {
 public:
  LimitOperator(OperatorPtr input, size_t limit)
      : input_(std::move(input)), limit_(limit) {}
  const Schema& OutputSchema() const override { return input_->OutputSchema(); }
  void Open() override {
    input_->Open();
    produced_ = 0;
  }
  bool Next(Row* row) override {
    if (produced_ >= limit_) return false;
    if (!input_->Next(row)) return false;
    ++produced_;
    return true;
  }
  void Close() override { input_->Close(); }

 private:
  OperatorPtr input_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace

OperatorPtr Scan(const Table* table) { return std::make_unique<ScanOperator>(table); }

OperatorPtr Filter(OperatorPtr input, std::function<bool(const Row&)> predicate) {
  return std::make_unique<FilterOperator>(std::move(input), std::move(predicate));
}

OperatorPtr Project(OperatorPtr input, std::vector<ProjectColumn> columns) {
  return std::make_unique<ProjectOperator>(std::move(input), std::move(columns));
}

OperatorPtr ProjectColumns(OperatorPtr input, std::vector<int32_t> columns) {
  const Schema& in = input->OutputSchema();
  std::vector<ProjectColumn> projections;
  projections.reserve(columns.size());
  for (const int32_t c : columns) {
    projections.push_back({in.names[static_cast<size_t>(c)],
                           in.types[static_cast<size_t>(c)],
                           [c](const Row& row) { return row[static_cast<size_t>(c)]; }});
  }
  return Project(std::move(input), std::move(projections));
}

OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<int32_t> left_keys, std::vector<int32_t> right_keys) {
  return std::make_unique<HashJoinOperator>(std::move(left), std::move(right),
                                            std::move(left_keys), std::move(right_keys));
}

OperatorPtr GroupAggregate(OperatorPtr input, std::vector<int32_t> group_columns,
                           std::vector<AggregateSpec> aggregates) {
  return std::make_unique<GroupAggregateOperator>(std::move(input),
                                                  std::move(group_columns),
                                                  std::move(aggregates));
}

OperatorPtr Sort(OperatorPtr input, std::vector<int32_t> sort_columns, bool descending) {
  return std::make_unique<SortOperator>(std::move(input), std::move(sort_columns),
                                        descending);
}

OperatorPtr Distinct(OperatorPtr input) {
  return std::make_unique<DistinctOperator>(std::move(input));
}

OperatorPtr Limit(OperatorPtr input, size_t limit) {
  return std::make_unique<LimitOperator>(std::move(input), limit);
}

Table Materialize(Operator& root) {
  Table table(root.OutputSchema());
  root.Open();
  Row row;
  while (root.Next(&row)) table.AppendUnchecked(std::move(row));
  root.Close();
  return table;
}

}  // namespace grouplink
