#include "relational/linkage_plans.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "relational/expression.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace {

// Wraps a materialized table in a scan over a heap copy kept alive by the
// returned operator (plans below are built and executed within one call,
// so a small holder keeps ownership simple).
class OwnedScan final : public Operator {
 public:
  explicit OwnedScan(Table table) : table_(std::move(table)) {}
  const Schema& OutputSchema() const override { return table_.schema(); }
  void Open() override { position_ = 0; }
  bool Next(Row* row) override {
    if (position_ >= table_.num_rows()) return false;
    *row = table_.rows()[position_++];
    return true;
  }
  void Close() override {}

 private:
  Table table_;
  size_t position_ = 0;
};

OperatorPtr ScanOwned(Table table) {
  return std::make_unique<OwnedScan>(std::move(table));
}

}  // namespace

Table MakeTokensTable(const Dataset& dataset) {
  Table table(Schema{{"record_id", "group_id", "token"},
                     {ColumnType::kInt, ColumnType::kInt, ColumnType::kString}});
  const std::vector<int32_t> record_group = dataset.RecordToGroup();
  for (int32_t r = 0; r < dataset.num_records(); ++r) {
    for (const std::string& token :
         ToTokenSet(Tokenize(dataset.records[static_cast<size_t>(r)].text))) {
      table.AppendUnchecked({static_cast<int64_t>(r),
                             static_cast<int64_t>(record_group[static_cast<size_t>(r)]),
                             token});
    }
  }
  return table;
}

Table MakeGroupSizesTable(const Dataset& dataset) {
  Table table(Schema{{"group_id", "group_size"}, {ColumnType::kInt, ColumnType::kInt}});
  for (int32_t g = 0; g < dataset.num_groups(); ++g) {
    table.AppendUnchecked(
        {static_cast<int64_t>(g), static_cast<int64_t>(dataset.GroupSize(g))});
  }
  return table;
}

Table SqlRecordPairCandidates(const Table& tokens, int64_t min_overlap) {
  // tokens columns: 0 record_id, 1 group_id, 2 token.
  // Join output: 0 r1, 1 g1, 2 token, 3 r2, 4 g2, 5 token_r.
  auto joined = HashJoin(Scan(&tokens), Scan(&tokens), {2}, {2});
  // WHERE t1.record_id < t2.record_id AND t1.group_id <> t2.group_id.
  auto filtered =
      Filter(std::move(joined),
             AsPredicate(And(Lt(Column(0), Column(3)), Ne(Column(1), Column(4)))));
  auto grouped = GroupAggregate(std::move(filtered), {0, 1, 3, 4},
                                {{AggregateKind::kCount, -1, "overlap"}});
  // HAVING COUNT(*) >= :min_overlap.
  auto having =
      Filter(std::move(grouped),
             AsPredicate(Ge(Column(4), Literal(Value(min_overlap)))));
  // Rename to the documented schema.
  auto projected = Project(
      std::move(having),
      {{"r1", ColumnType::kInt, [](const Row& row) { return row[0]; }},
       {"g1", ColumnType::kInt, [](const Row& row) { return row[1]; }},
       {"r2", ColumnType::kInt, [](const Row& row) { return row[2]; }},
       {"g2", ColumnType::kInt, [](const Row& row) { return row[3]; }},
       {"overlap", ColumnType::kInt, [](const Row& row) { return row[4]; }}});
  return Materialize(*projected);
}

Table SqlVerifiedEdges(const Table& candidates, const RecordSimFn& sim, double theta) {
  // candidates columns: 0 r1, 1 g1, 2 r2, 3 g2 (overlap ignored).
  auto scored = Project(
      Scan(&candidates),
      {{"r1", ColumnType::kInt, [](const Row& row) { return row[0]; }},
       {"g1", ColumnType::kInt, [](const Row& row) { return row[1]; }},
       {"r2", ColumnType::kInt, [](const Row& row) { return row[2]; }},
       {"g2", ColumnType::kInt, [](const Row& row) { return row[3]; }},
       {"sim", ColumnType::kDouble, [&sim](const Row& row) {
          return Value(sim(static_cast<int32_t>(row[0].AsInt()),
                           static_cast<int32_t>(row[2].AsInt())));
        }}});
  auto thresholded = Filter(std::move(scored), [theta](const Row& row) {
    return row[4].AsDouble() >= theta;
  });
  // Orient so g1 < g2.
  auto oriented = Project(
      std::move(thresholded),
      {{"g1", ColumnType::kInt,
        [](const Row& row) { return row[1].AsInt() < row[3].AsInt() ? row[1] : row[3]; }},
       {"g2", ColumnType::kInt,
        [](const Row& row) { return row[1].AsInt() < row[3].AsInt() ? row[3] : row[1]; }},
       {"r1", ColumnType::kInt,
        [](const Row& row) { return row[1].AsInt() < row[3].AsInt() ? row[0] : row[2]; }},
       {"r2", ColumnType::kInt,
        [](const Row& row) { return row[1].AsInt() < row[3].AsInt() ? row[2] : row[0]; }},
       {"sim", ColumnType::kDouble, [](const Row& row) { return row[4]; }}});
  return Materialize(*oriented);
}

Table SqlUpperBoundScores(const Table& edges, const Table& group_sizes) {
  // edges columns: 0 g1, 1 g2, 2 r1, 3 r2, 4 sim.
  // Per-record best on each side, then per-pair sums and coverage counts.
  auto best_left = GroupAggregate(Scan(&edges), {0, 1, 2},
                                  {{AggregateKind::kMax, 4, "best"}});
  // best_left: 0 g1, 1 g2, 2 r1, 3 best.
  auto agg_left = GroupAggregate(std::move(best_left), {0, 1},
                                 {{AggregateKind::kSum, 3, "sum_l"},
                                  {AggregateKind::kCount, -1, "cov_l"}});
  // agg_left: 0 g1, 1 g2, 2 sum_l, 3 cov_l.
  auto best_right = GroupAggregate(Scan(&edges), {0, 1, 3},
                                   {{AggregateKind::kMax, 4, "best"}});
  auto agg_right = GroupAggregate(std::move(best_right), {0, 1},
                                  {{AggregateKind::kSum, 3, "sum_r"},
                                   {AggregateKind::kCount, -1, "cov_r"}});

  // Join the two sides on (g1, g2), then the size table twice.
  auto joined = HashJoin(std::move(agg_left), std::move(agg_right), {0, 1}, {0, 1});
  // joined: 0 g1, 1 g2, 2 sum_l, 3 cov_l, 4 g1_r, 5 g2_r, 6 sum_r, 7 cov_r.
  auto with_size1 = HashJoin(std::move(joined), Scan(&group_sizes), {0}, {0});
  // ... 8 group_id, 9 group_size.
  auto with_size2 = HashJoin(std::move(with_size1), Scan(&group_sizes), {1}, {0});
  // ... 10 group_id, 11 group_size.
  auto ub = Project(
      std::move(with_size2),
      {{"g1", ColumnType::kInt, [](const Row& row) { return row[0]; }},
       {"g2", ColumnType::kInt, [](const Row& row) { return row[1]; }},
       {"ub", ColumnType::kDouble, [](const Row& row) {
          const double s = 0.5 * (row[2].AsDouble() + row[6].AsDouble());
          const double coverage =
              static_cast<double>(std::min(row[3].AsInt(), row[7].AsInt()));
          const double denominator =
              static_cast<double>(row[9].AsInt() + row[11].AsInt()) - coverage;
          GL_DCHECK(denominator > 0.0);
          return Value(s / denominator);
        }}});
  auto sorted = Sort(std::move(ub), {0, 1});
  return Materialize(*sorted);
}

std::vector<std::pair<int32_t, int32_t>> SqlUpperBoundFilter(
    const Dataset& dataset, const RecordSimFn& sim, double theta,
    double group_threshold, int64_t min_overlap) {
  const Table tokens = MakeTokensTable(dataset);
  const Table sizes = MakeGroupSizesTable(dataset);
  const Table candidates = SqlRecordPairCandidates(tokens, min_overlap);
  const Table edges = SqlVerifiedEdges(candidates, sim, theta);
  Table scores = SqlUpperBoundScores(edges, sizes);

  auto filtered = Filter(ScanOwned(std::move(scores)), [group_threshold](const Row& row) {
    return row[2].AsDouble() >= group_threshold;
  });
  const Table survivors = Materialize(*filtered);

  std::vector<std::pair<int32_t, int32_t>> pairs;
  pairs.reserve(survivors.num_rows());
  for (const Row& row : survivors.rows()) {
    pairs.emplace_back(static_cast<int32_t>(row[0].AsInt()),
                       static_cast<int32_t>(row[1].AsInt()));
  }
  return pairs;
}

}  // namespace grouplink
