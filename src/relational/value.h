#ifndef GROUPLINK_RELATIONAL_VALUE_H_
#define GROUPLINK_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace grouplink {

/// The relational substrate's scalar value: NULL, 64-bit integer, double,
/// or string. Used by the mini volcano-style engine that reproduces the
/// paper's "group linkage measures inside a DBMS" evaluation path.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}
  // NOLINT(runtime/explicit): implicit by design so relational literals read
  // naturally, e.g. `row.Set("age", 42)`.
  Value(int64_t v) : data_(v) {}                   // NOLINT(runtime/explicit): see above
  Value(double v) : data_(v) {}                    // NOLINT(runtime/explicit): see above
  Value(std::string v) : data_(std::move(v)) {}    // NOLINT(runtime/explicit): see above
  Value(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit): see above

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Typed accessors; aborting on type mismatch (programmer error).
  int64_t AsInt() const;
  double AsDouble() const;  // Also accepts int (widening).
  const std::string& AsString() const;

  /// SQL-style comparison: NULLs compare equal to NULLs and less than
  /// everything else (total order for sorting/grouping); numeric types
  /// compare by value across int/double.
  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  /// Debug rendering ("NULL", "42", "3.5", "abc").
  std::string ToString() const;

  /// Stable hash consistent with operator== (for hash join/group-by).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// One tuple.
using Row = std::vector<Value>;

/// Column types for schema declarations.
enum class ColumnType { kInt, kDouble, kString };

/// A named, typed column list.
struct Schema {
  std::vector<std::string> names;
  std::vector<ColumnType> types;

  size_t num_columns() const { return names.size(); }

  /// Index of `name`, or -1 if absent.
  int32_t ColumnIndex(const std::string& name) const;
};

}  // namespace grouplink

#endif  // GROUPLINK_RELATIONAL_VALUE_H_
