#ifndef GROUPLINK_RELATIONAL_TABLE_H_
#define GROUPLINK_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace grouplink {

/// An in-memory relation: schema + row store. The storage half of the
/// mini relational engine.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}

  /// Appends a row after checking arity and column types (NULL is
  /// accepted in any column).
  Status Append(Row row);

  /// Appends without validation (trusted internal producers).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Renders the table like eval/TextTable (debugging aid, tests).
  std::string ToString(size_t max_rows = 20) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace grouplink

#endif  // GROUPLINK_RELATIONAL_TABLE_H_
