#ifndef GROUPLINK_RELATIONAL_LINKAGE_PLANS_H_
#define GROUPLINK_RELATIONAL_LINKAGE_PLANS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/group_measures.h"
#include "relational/operators.h"

namespace grouplink {

/// The paper's "group linkage inside a DBMS" evaluation path: the
/// candidate join, the similarity-UDF verification, and the upper-bound
/// measure are all expressed as relational plans over the mini engine in
/// relational/operators.h. The functions below build/execute those plans;
/// the test suite checks them against the native (index/matching-based)
/// implementations.

/// Builds `tokens(record_id INT, group_id INT, token STRING)` — one row
/// per distinct word token per record, the exploded representation that
/// set-overlap SQL joins run on.
Table MakeTokensTable(const Dataset& dataset);

/// Builds `group_sizes(group_id INT, group_size INT)`.
Table MakeGroupSizesTable(const Dataset& dataset);

/// SQL candidate generation — record pairs of different groups sharing at
/// least `min_overlap` tokens:
///
///   SELECT t1.record_id AS r1, t1.group_id AS g1,
///          t2.record_id AS r2, t2.group_id AS g2, COUNT(*) AS overlap
///   FROM tokens t1 JOIN tokens t2 ON t1.token = t2.token
///   WHERE t1.record_id < t2.record_id AND t1.group_id <> t2.group_id
///   GROUP BY r1, g1, r2, g2
///   HAVING COUNT(*) >= :min_overlap
///
/// Output schema: (r1 INT, g1 INT, r2 INT, g2 INT, overlap INT).
Table SqlRecordPairCandidates(const Table& tokens, int64_t min_overlap);

/// Verification step — applies the record-similarity UDF to each
/// candidate pair, keeps pairs with sim >= theta, and orients every row
/// so that g1 < g2. Output: (g1 INT, g2 INT, r1 INT, r2 INT, sim DOUBLE).
Table SqlVerifiedEdges(const Table& candidates, const RecordSimFn& sim, double theta);

/// The upper-bound group measure as pure SQL aggregation over the edge
/// relation (this is what makes UB "DBMS-friendly" in the paper — no
/// matching code, just GROUP BY / MAX / SUM):
///
///   WITH best_l AS (SELECT g1, g2, r1, MAX(sim) AS b FROM edges
///                   GROUP BY g1, g2, r1),
///        agg_l  AS (SELECT g1, g2, SUM(b) AS sum_l, COUNT(*) AS cov_l
///                   FROM best_l GROUP BY g1, g2),
///        -- best_r / agg_r symmetric on r2 --
///   SELECT g1, g2,
///          (sum_l + sum_r) / 2
///            / (size1 + size2 - MIN(cov_l, cov_r)) AS ub
///   FROM agg_l JOIN agg_r USING (g1, g2)
///        JOIN group_sizes s1 ON s1.group_id = g1
///        JOIN group_sizes s2 ON s2.group_id = g2;
///
/// Output: (g1 INT, g2 INT, ub DOUBLE), sorted by (g1, g2). Agrees
/// exactly with core UpperBoundMeasure when `edges` holds every record
/// pair with sim >= θ of each group pair (verified in tests).
Table SqlUpperBoundScores(const Table& edges, const Table& group_sizes);

/// End-to-end SQL filter: token join (min_overlap), UDF verification at
/// `theta`, SQL UB aggregation, and the Θ filter. Returns the group pairs
/// whose UB clears `group_threshold` — the SQL rendition of the filter
/// phase, whose survivors the native refine step would then process.
[[nodiscard]] std::vector<std::pair<int32_t, int32_t>> SqlUpperBoundFilter(
    const Dataset& dataset, const RecordSimFn& sim, double theta,
    double group_threshold, int64_t min_overlap = 1);

}  // namespace grouplink

#endif  // GROUPLINK_RELATIONAL_LINKAGE_PLANS_H_
