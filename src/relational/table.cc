#include "relational/table.h"

#include "eval/table.h"

namespace grouplink {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_columns()) {
    return Status::InvalidArgument("row arity " + std::to_string(row.size()) +
                                   " != schema arity " +
                                   std::to_string(schema_.num_columns()));
  }
  for (size_t c = 0; c < row.size(); ++c) {
    if (row[c].is_null()) continue;
    const bool ok = (schema_.types[c] == ColumnType::kInt && row[c].is_int()) ||
                    (schema_.types[c] == ColumnType::kDouble &&
                     (row[c].is_double() || row[c].is_int())) ||
                    (schema_.types[c] == ColumnType::kString && row[c].is_string());
    if (!ok) {
      return Status::InvalidArgument("type mismatch in column " + schema_.names[c] +
                                     ": " + row[c].ToString());
    }
  }
  rows_.push_back(std::move(row));
  return Status::Ok();
}

std::string Table::ToString(size_t max_rows) const {
  TextTable text(schema_.names);
  for (size_t r = 0; r < rows_.size() && r < max_rows; ++r) {
    std::vector<std::string> cells;
    cells.reserve(rows_[r].size());
    for (const Value& v : rows_[r]) cells.push_back(v.ToString());
    text.AddRow(std::move(cells));
  }
  std::string out = text.ToString();
  if (rows_.size() > max_rows) {
    out += "... (" + std::to_string(rows_.size() - max_rows) + " more rows)\n";
  }
  return out;
}

}  // namespace grouplink
