#include "relational/expression.h"

#include <cmath>
#include <utility>

#include "common/logging.h"

namespace grouplink {
namespace {

class ColumnExpression final : public Expression {
 public:
  explicit ColumnExpression(int32_t index) : index_(index) {
    GL_CHECK_GE(index, 0);
  }
  Value Evaluate(const Row& row) const override {
    GL_DCHECK(static_cast<size_t>(index_) < row.size());
    return row[static_cast<size_t>(index_)];
  }
  std::string ToString() const override { return "#" + std::to_string(index_); }

 private:
  int32_t index_;
};

class LiteralExpression final : public Expression {
 public:
  explicit LiteralExpression(Value value) : value_(std::move(value)) {}
  Value Evaluate(const Row&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }

 private:
  Value value_;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

class CompareExpression final : public Expression {
 public:
  CompareExpression(CompareOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Value Evaluate(const Row& row) const override {
    const Value va = a_->Evaluate(row);
    const Value vb = b_->Evaluate(row);
    if (va.is_null() || vb.is_null()) return Value();
    bool result = false;
    switch (op_) {
      case CompareOp::kEq:
        result = va == vb;
        break;
      case CompareOp::kNe:
        result = !(va == vb);
        break;
      case CompareOp::kLt:
        result = va < vb;
        break;
      case CompareOp::kLe:
        result = !(vb < va);
        break;
      case CompareOp::kGt:
        result = vb < va;
        break;
      case CompareOp::kGe:
        result = !(va < vb);
        break;
    }
    return Value(static_cast<int64_t>(result ? 1 : 0));
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " " + CompareOpName(op_) + " " + b_->ToString() + ")";
  }

 private:
  CompareOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

bool Truthy(const Value& value) {
  if (value.is_null()) return false;
  if (value.is_string()) return !value.AsString().empty();
  return value.AsDouble() != 0.0;
}

class AndExpression final : public Expression {
 public:
  AndExpression(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Value Evaluate(const Row& row) const override {
    return Value(static_cast<int64_t>(
        Truthy(a_->Evaluate(row)) && Truthy(b_->Evaluate(row)) ? 1 : 0));
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " AND " + b_->ToString() + ")";
  }

 private:
  ExprPtr a_;
  ExprPtr b_;
};

class OrExpression final : public Expression {
 public:
  OrExpression(ExprPtr a, ExprPtr b) : a_(std::move(a)), b_(std::move(b)) {}
  Value Evaluate(const Row& row) const override {
    return Value(static_cast<int64_t>(
        Truthy(a_->Evaluate(row)) || Truthy(b_->Evaluate(row)) ? 1 : 0));
  }
  std::string ToString() const override {
    return "(" + a_->ToString() + " OR " + b_->ToString() + ")";
  }

 private:
  ExprPtr a_;
  ExprPtr b_;
};

class NotExpression final : public Expression {
 public:
  explicit NotExpression(ExprPtr a) : a_(std::move(a)) {}
  Value Evaluate(const Row& row) const override {
    return Value(static_cast<int64_t>(Truthy(a_->Evaluate(row)) ? 0 : 1));
  }
  std::string ToString() const override { return "(NOT " + a_->ToString() + ")"; }

 private:
  ExprPtr a_;
};

enum class ArithmeticOp { kAdd, kSub, kMul, kDiv };

class ArithmeticExpression final : public Expression {
 public:
  ArithmeticExpression(ArithmeticOp op, ExprPtr a, ExprPtr b)
      : op_(op), a_(std::move(a)), b_(std::move(b)) {}
  Value Evaluate(const Row& row) const override {
    const Value va = a_->Evaluate(row);
    const Value vb = b_->Evaluate(row);
    if (va.is_null() || vb.is_null()) return Value();
    const double x = va.AsDouble();
    const double y = vb.AsDouble();
    switch (op_) {
      case ArithmeticOp::kAdd:
        return Value(x + y);
      case ArithmeticOp::kSub:
        return Value(x - y);
      case ArithmeticOp::kMul:
        return Value(x * y);
      case ArithmeticOp::kDiv:
        return y == 0.0 ? Value() : Value(x / y);
    }
    return Value();
  }
  std::string ToString() const override {
    const char* symbol = op_ == ArithmeticOp::kAdd   ? "+"
                         : op_ == ArithmeticOp::kSub ? "-"
                         : op_ == ArithmeticOp::kMul ? "*"
                                                     : "/";
    return "(" + a_->ToString() + " " + symbol + " " + b_->ToString() + ")";
  }

 private:
  ArithmeticOp op_;
  ExprPtr a_;
  ExprPtr b_;
};

class UdfExpression final : public Expression {
 public:
  UdfExpression(std::string name, std::function<Value(const Row&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  Value Evaluate(const Row& row) const override { return fn_(row); }
  std::string ToString() const override { return name_ + "(...)"; }

 private:
  std::string name_;
  std::function<Value(const Row&)> fn_;
};

}  // namespace

ExprPtr Column(int32_t index) { return std::make_shared<ColumnExpression>(index); }

ExprPtr Literal(Value value) {
  return std::make_shared<LiteralExpression>(std::move(value));
}

ExprPtr Eq(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kEq, std::move(a), std::move(b));
}
ExprPtr Ne(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kNe, std::move(a), std::move(b));
}
ExprPtr Lt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kLt, std::move(a), std::move(b));
}
ExprPtr Le(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kLe, std::move(a), std::move(b));
}
ExprPtr Gt(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kGt, std::move(a), std::move(b));
}
ExprPtr Ge(ExprPtr a, ExprPtr b) {
  return std::make_shared<CompareExpression>(CompareOp::kGe, std::move(a), std::move(b));
}

ExprPtr And(ExprPtr a, ExprPtr b) {
  return std::make_shared<AndExpression>(std::move(a), std::move(b));
}
ExprPtr Or(ExprPtr a, ExprPtr b) {
  return std::make_shared<OrExpression>(std::move(a), std::move(b));
}
ExprPtr Not(ExprPtr a) { return std::make_shared<NotExpression>(std::move(a)); }

ExprPtr Add(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpression>(ArithmeticOp::kAdd, std::move(a),
                                                std::move(b));
}
ExprPtr Sub(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpression>(ArithmeticOp::kSub, std::move(a),
                                                std::move(b));
}
ExprPtr Mul(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpression>(ArithmeticOp::kMul, std::move(a),
                                                std::move(b));
}
ExprPtr Div(ExprPtr a, ExprPtr b) {
  return std::make_shared<ArithmeticExpression>(ArithmeticOp::kDiv, std::move(a),
                                                std::move(b));
}

ExprPtr Udf(std::string name, std::function<Value(const Row&)> fn) {
  return std::make_shared<UdfExpression>(std::move(name), std::move(fn));
}

std::function<bool(const Row&)> AsPredicate(ExprPtr expression) {
  return [expression = std::move(expression)](const Row& row) {
    return Truthy(expression->Evaluate(row));
  };
}

ProjectColumn AsProjection(ExprPtr expression, std::string name, ColumnType type) {
  ProjectColumn column;
  column.name = std::move(name);
  column.type = type;
  column.compute = [expression = std::move(expression)](const Row& row) {
    return expression->Evaluate(row);
  };
  return column;
}

}  // namespace grouplink
