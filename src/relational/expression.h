#ifndef GROUPLINK_RELATIONAL_EXPRESSION_H_
#define GROUPLINK_RELATIONAL_EXPRESSION_H_

#include <functional>
#include <memory>
#include <string>

#include "relational/operators.h"
#include "relational/value.h"

namespace grouplink {

/// A scalar expression over a row — the declarative alternative to raw
/// lambdas in Filter/Project plans. Expressions are immutable trees
/// shared via ExprPtr.
///
/// NULL semantics (simplified SQL): any comparison or arithmetic input
/// that is NULL yields NULL; AsPredicate treats NULL as false; And/Or
/// short-circuit with NULL treated as false.
///
/// Example — WHERE r1 < r2 AND g1 <> g2:
///   auto predicate = AsPredicate(
///       And(Lt(Column(0), Column(3)), Ne(Column(1), Column(4))));
///   auto plan = Filter(std::move(input), predicate);
class Expression {
 public:
  virtual ~Expression() = default;
  virtual Value Evaluate(const Row& row) const = 0;
  /// Debug rendering, e.g. "(#0 < #3)".
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::shared_ptr<const Expression>;

/// Column reference by position.
ExprPtr Column(int32_t index);

/// Constant.
ExprPtr Literal(Value value);

/// Comparisons (NULL if either side is NULL; cross-type numeric
/// comparison as in Value::operator<).
ExprPtr Eq(ExprPtr a, ExprPtr b);
ExprPtr Ne(ExprPtr a, ExprPtr b);
ExprPtr Lt(ExprPtr a, ExprPtr b);
ExprPtr Le(ExprPtr a, ExprPtr b);
ExprPtr Gt(ExprPtr a, ExprPtr b);
ExprPtr Ge(ExprPtr a, ExprPtr b);

/// Boolean connectives over int(0/1)/NULL operands.
ExprPtr And(ExprPtr a, ExprPtr b);
ExprPtr Or(ExprPtr a, ExprPtr b);
ExprPtr Not(ExprPtr a);

/// Arithmetic (double result; NULL-propagating).
ExprPtr Add(ExprPtr a, ExprPtr b);
ExprPtr Sub(ExprPtr a, ExprPtr b);
ExprPtr Mul(ExprPtr a, ExprPtr b);
ExprPtr Div(ExprPtr a, ExprPtr b);  // NULL on division by zero.

/// Scalar user-defined function (how similarity UDFs enter plans).
ExprPtr Udf(std::string name, std::function<Value(const Row&)> fn);

/// Adapts an expression to a Filter predicate (NULL / 0 -> false).
[[nodiscard]] std::function<bool(const Row&)> AsPredicate(ExprPtr expression);

/// Adapts an expression to a Project column.
ProjectColumn AsProjection(ExprPtr expression, std::string name, ColumnType type);

}  // namespace grouplink

#endif  // GROUPLINK_RELATIONAL_EXPRESSION_H_
