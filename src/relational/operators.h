#ifndef GROUPLINK_RELATIONAL_OPERATORS_H_
#define GROUPLINK_RELATIONAL_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/table.h"

namespace grouplink {

/// Volcano-style physical operator: Open, pull rows with Next, Close.
/// Plans are trees of operators built with the factory functions below;
/// Materialize executes a plan into a Table.
///
/// Example — citation pairs sharing >= 2 tokens:
///   auto plan = GroupAggregate(
///       HashJoin(Scan(&tokens), Scan(&tokens), {1}, {1}),   // token == token
///       /*group_columns=*/{0, 2},                           // (rec_a, rec_b)
///       {{AggregateKind::kCount, -1, "overlap"}});
///   Table result = Materialize(*plan);
class Operator {
 public:
  virtual ~Operator() = default;
  virtual const Schema& OutputSchema() const = 0;
  virtual void Open() = 0;
  /// Produces the next row; returns false when exhausted.
  virtual bool Next(Row* row) = 0;
  virtual void Close() = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Full-table scan. `table` must outlive the plan.
OperatorPtr Scan(const Table* table);

/// Rows for which `predicate` returns true.
OperatorPtr Filter(OperatorPtr input, std::function<bool(const Row&)> predicate);

/// One output column: a name, a declared type, and a row-level compute
/// function (this is where similarity UDFs plug into SQL plans, exactly
/// the paper's "similarity function as UDF" device).
struct ProjectColumn {
  std::string name;
  ColumnType type;
  std::function<Value(const Row&)> compute;
};

/// Computed projection.
OperatorPtr Project(OperatorPtr input, std::vector<ProjectColumn> columns);

/// Convenience projection: keep the given input columns (by index).
OperatorPtr ProjectColumns(OperatorPtr input, std::vector<int32_t> columns);

/// Inner equi-join on left_keys == right_keys (positional, same length).
/// Output schema = left columns followed by right columns; duplicate
/// names are suffixed with "_r". Hash join: the right side is built into
/// a hash table on Open, the left side streams.
OperatorPtr HashJoin(OperatorPtr left, OperatorPtr right,
                     std::vector<int32_t> left_keys, std::vector<int32_t> right_keys);

enum class AggregateKind { kCount, kSum, kMin, kMax, kAvg };

/// One aggregate: kind + input column (ignored for kCount) + output name.
struct AggregateSpec {
  AggregateKind kind;
  int32_t column;
  std::string output_name;
};

/// Hash group-by. Output schema = group columns then one column per
/// aggregate (kCount -> int, kSum/kMin/kMax/kAvg -> double). With no
/// group columns produces exactly one global row (even for empty input).
/// Output order is deterministic (first-seen group order).
OperatorPtr GroupAggregate(OperatorPtr input, std::vector<int32_t> group_columns,
                           std::vector<AggregateSpec> aggregates);

/// Full sort by the given columns (Value ordering), ascending unless
/// `descending`. Materializes its input.
OperatorPtr Sort(OperatorPtr input, std::vector<int32_t> sort_columns,
                 bool descending = false);

/// Duplicate elimination over whole rows (first occurrence wins).
OperatorPtr Distinct(OperatorPtr input);

/// At most `limit` rows.
OperatorPtr Limit(OperatorPtr input, size_t limit);

/// Executes `root` to completion and returns the result relation.
Table Materialize(Operator& root);

}  // namespace grouplink

#endif  // GROUPLINK_RELATIONAL_OPERATORS_H_
