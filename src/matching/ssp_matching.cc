#include "matching/ssp_matching.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace grouplink {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

}  // namespace

std::vector<double> MaxWeightByCardinality(const BipartiteGraph& graph) {
  const int32_t num_left = graph.num_left();
  const int32_t num_right = graph.num_right();
  const auto weights = graph.ToDenseWeights();

  std::vector<int32_t> match_left(static_cast<size_t>(num_left), -1);
  std::vector<int32_t> match_right(static_cast<size_t>(num_right), -1);
  std::vector<double> profile = {0.0};

  // Each iteration: Bellman-Ford over "cost to reach right node r via an
  // alternating path from some free left node", where using edge (l, r)
  // costs -w(l, r) and retreating along a matched edge refunds +w.
  // The best free right node with finite cost gives the max-gain
  // augmenting path; gain = -cost.
  while (true) {
    std::vector<double> distance(static_cast<size_t>(num_right), kInfinity);
    std::vector<int32_t> reached_from(static_cast<size_t>(num_right), -1);

    // Initialize from free left nodes.
    for (int32_t l = 0; l < num_left; ++l) {
      if (match_left[static_cast<size_t>(l)] != -1) continue;
      for (int32_t r = 0; r < num_right; ++r) {
        const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
        if (w <= 0.0) continue;
        if (-w < distance[static_cast<size_t>(r)]) {
          distance[static_cast<size_t>(r)] = -w;
          reached_from[static_cast<size_t>(r)] = l;
        }
      }
    }

    // Relax through matched right nodes: r -> (its matched left l') -> r'.
    // At most num_right rounds (simple paths).
    bool changed = true;
    for (int32_t round = 0; round < num_right && changed; ++round) {
      changed = false;
      for (int32_t r = 0; r < num_right; ++r) {
        if (distance[static_cast<size_t>(r)] == kInfinity) continue;
        const int32_t l = match_right[static_cast<size_t>(r)];
        if (l == -1) continue;  // Free right node: path ends here.
        const double refund =
            weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
        for (int32_t next = 0; next < num_right; ++next) {
          if (next == r) continue;
          const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(next)];
          if (w <= 0.0) continue;
          const double candidate = distance[static_cast<size_t>(r)] + refund - w;
          if (candidate < distance[static_cast<size_t>(next)] - 1e-15) {
            distance[static_cast<size_t>(next)] = candidate;
            reached_from[static_cast<size_t>(next)] = l;
            changed = true;
          }
        }
      }
    }

    // Pick the best free right endpoint.
    int32_t best_right = -1;
    double best_cost = kInfinity;
    for (int32_t r = 0; r < num_right; ++r) {
      if (match_right[static_cast<size_t>(r)] != -1) continue;
      if (distance[static_cast<size_t>(r)] < best_cost) {
        best_cost = distance[static_cast<size_t>(r)];
        best_right = r;
      }
    }
    if (best_right == -1) break;  // No augmenting path: matching is maximum.

    // Flip the alternating path ending at best_right.
    int32_t r = best_right;
    while (r != -1) {
      const int32_t l = reached_from[static_cast<size_t>(r)];
      GL_CHECK_GE(l, 0);
      const int32_t previous_right = match_left[static_cast<size_t>(l)];
      match_left[static_cast<size_t>(l)] = r;
      match_right[static_cast<size_t>(r)] = l;
      r = previous_right;
    }
    profile.push_back(profile.back() - best_cost);
  }
  return profile;
}

double MaxNormalizedMatchingScore(const BipartiteGraph& graph, int32_t size_left,
                                  int32_t size_right) {
  const int32_t total = size_left + size_right;
  if (total == 0) return 1.0;
  if (size_left == 0 || size_right == 0) return 0.0;
  const std::vector<double> profile = MaxWeightByCardinality(graph);
  double best = 0.0;
  for (size_t k = 0; k < profile.size(); ++k) {
    const double denominator = static_cast<double>(total) - static_cast<double>(k);
    GL_DCHECK(denominator > 0.0);
    best = std::max(best, profile[k] / denominator);
  }
  return best;
}

}  // namespace grouplink
