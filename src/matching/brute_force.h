#ifndef GROUPLINK_MATCHING_BRUTE_FORCE_H_
#define GROUPLINK_MATCHING_BRUTE_FORCE_H_

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Exhaustive maximum-weight matching by recursive enumeration.
/// Exponential time — reference oracle for testing the Hungarian and
/// greedy implementations on small graphs (≲ 9 nodes per side).
[[nodiscard]] Matching BruteForceMaxWeightMatching(const BipartiteGraph& graph);

/// Exhaustively maximizes the *normalized* matching score
/// W(M) / (num_left + num_right − |M|) over all matchings M (the BM*
/// variant). Used to validate the soundness of the greedy lower bound.
/// Returns 1.0 when both sides are empty and 0.0 when exactly one is.
[[nodiscard]] double BruteForceMaxNormalizedScore(const BipartiteGraph& graph);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_BRUTE_FORCE_H_
