#ifndef GROUPLINK_MATCHING_SSP_MATCHING_H_
#define GROUPLINK_MATCHING_SSP_MATCHING_H_

#include <vector>

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Maximum matching weight per cardinality, by successive augmenting
/// paths: `result[k]` is the maximum total weight over all matchings with
/// exactly `k` edges, for k = 0..ν (ν = maximum matching cardinality).
///
/// Computed as a min-cost flow: starting from the empty matching, each
/// step augments along the maximum-gain alternating path (Bellman-Ford on
/// negated weights, which handles the negative reduced costs directly).
/// By min-cost-flow optimality, after k augmentations the matching is
/// weight-optimal among all size-k matchings, so the whole profile comes
/// out of one pass; the sequence of gains is non-increasing (the profile
/// is concave), and max_k result[k] equals the unrestricted maximum
/// matching weight (cross-checked against the Hungarian algorithm in the
/// test suite).
///
/// O(ν · V · E) time — fine for group-sized graphs.
[[nodiscard]] std::vector<double> MaxWeightByCardinality(const BipartiteGraph& graph);

/// The exact maximizer of the normalized group score over *all* matchings
/// (the BM* variant):
///
///   BM*(g1, g2) = max_M  W(M) / (|g1| + |g2| − |M|)
///               = max_k  MaxWeightByCardinality[k] / (L + R − k)
///
/// BM uses the maximum-weight matching's cardinality, which under ties
/// can under-count matched pairs; BM* is tie-proof and upper-bounds BM.
/// Returns 1 when both sizes are 0 and 0 when exactly one is.
[[nodiscard]] double MaxNormalizedMatchingScore(const BipartiteGraph& graph, int32_t size_left,
                                  int32_t size_right);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_SSP_MATCHING_H_
