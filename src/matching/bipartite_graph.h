#ifndef GROUPLINK_MATCHING_BIPARTITE_GRAPH_H_
#define GROUPLINK_MATCHING_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <vector>

namespace grouplink {

/// One weighted edge between left node `left` and right node `right`.
struct BipartiteEdge {
  int32_t left = 0;
  int32_t right = 0;
  double weight = 0.0;
};

/// A weighted bipartite graph with `num_left` × `num_right` node sets and
/// an explicit edge list plus left-adjacency index. Edge weights are
/// expected in (0, 1] — the similarity graphs of the group linkage measure
/// only contain edges whose record similarity passed the threshold θ > 0.
class BipartiteGraph {
 public:
  BipartiteGraph(int32_t num_left, int32_t num_right);

  /// Adds an edge; duplicate (left, right) pairs are allowed but the
  /// matching algorithms will effectively use the heaviest one.
  void AddEdge(int32_t left, int32_t right, double weight);

  [[nodiscard]] int32_t num_left() const { return num_left_; }
  [[nodiscard]] int32_t num_right() const { return num_right_; }
  [[nodiscard]] const std::vector<BipartiteEdge>& edges() const { return edges_; }

  /// Indexes of edges incident to left node `left`.
  [[nodiscard]] const std::vector<int32_t>& LeftAdjacency(int32_t left) const;

  /// Dense weight matrix W[l][r] (0 where no edge; max over duplicates).
  /// O(num_left × num_right) space — callers keep groups to matchable size.
  [[nodiscard]] std::vector<std::vector<double>> ToDenseWeights() const;

 private:
  int32_t num_left_;
  int32_t num_right_;
  std::vector<BipartiteEdge> edges_;
  std::vector<std::vector<int32_t>> left_adjacency_;
};

/// The result of a matching computation over a BipartiteGraph.
struct Matching {
  /// Partner of each left node (index into right side), or kUnmatched.
  std::vector<int32_t> left_to_right;
  /// Partner of each right node, or kUnmatched.
  std::vector<int32_t> right_to_left;
  /// Sum of matched edge weights.
  double total_weight = 0.0;
  /// Number of matched pairs.
  int32_t size = 0;

  static constexpr int32_t kUnmatched = -1;

  /// Initializes an empty matching for a graph with the given dimensions.
  static Matching Empty(int32_t num_left, int32_t num_right);

  /// Recomputes `size` and `total_weight` from the pair arrays and the
  /// given dense weights (used internally by the algorithms).
  void RecomputeTotals(const std::vector<std::vector<double>>& weights);

  /// True if the pair arrays are mutually consistent.
  [[nodiscard]] bool IsConsistent() const;
};

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_BIPARTITE_GRAPH_H_
