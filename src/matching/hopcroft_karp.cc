#include "matching/hopcroft_karp.h"

#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

namespace grouplink {
namespace {

constexpr int32_t kInfiniteDistance = std::numeric_limits<int32_t>::max();

// State for one Hopcroft-Karp run; adjacency is deduplicated per left node.
struct HkState {
  std::vector<std::vector<int32_t>> adjacency;  // left -> right nodes.
  std::vector<int32_t> match_left;              // left -> right or -1.
  std::vector<int32_t> match_right;             // right -> left or -1.
  std::vector<int32_t> distance;                // BFS layer per left node.

  bool Bfs() {
    std::queue<int32_t> queue;
    bool found_augmenting_layer = false;
    for (size_t l = 0; l < adjacency.size(); ++l) {
      if (match_left[l] == -1) {
        distance[l] = 0;
        queue.push(static_cast<int32_t>(l));
      } else {
        distance[l] = kInfiniteDistance;
      }
    }
    while (!queue.empty()) {
      const int32_t l = queue.front();
      queue.pop();
      for (const int32_t r : adjacency[static_cast<size_t>(l)]) {
        const int32_t next = match_right[static_cast<size_t>(r)];
        if (next == -1) {
          found_augmenting_layer = true;
        } else if (distance[static_cast<size_t>(next)] == kInfiniteDistance) {
          distance[static_cast<size_t>(next)] = distance[static_cast<size_t>(l)] + 1;
          queue.push(next);
        }
      }
    }
    return found_augmenting_layer;
  }

  bool Dfs(int32_t l) {
    for (const int32_t r : adjacency[static_cast<size_t>(l)]) {
      const int32_t next = match_right[static_cast<size_t>(r)];
      if (next == -1 || (distance[static_cast<size_t>(next)] ==
                             distance[static_cast<size_t>(l)] + 1 &&
                         Dfs(next))) {
        match_left[static_cast<size_t>(l)] = r;
        match_right[static_cast<size_t>(r)] = l;
        return true;
      }
    }
    distance[static_cast<size_t>(l)] = kInfiniteDistance;
    return false;
  }
};

}  // namespace

Matching HopcroftKarpMatching(const BipartiteGraph& graph) {
  HkState state;
  state.adjacency.resize(static_cast<size_t>(graph.num_left()));
  {
    // Deduplicate parallel edges.
    std::vector<std::vector<bool>> seen(
        static_cast<size_t>(graph.num_left()),
        std::vector<bool>(static_cast<size_t>(graph.num_right()), false));
    for (const BipartiteEdge& e : graph.edges()) {
      if (seen[static_cast<size_t>(e.left)][static_cast<size_t>(e.right)]) continue;
      seen[static_cast<size_t>(e.left)][static_cast<size_t>(e.right)] = true;
      state.adjacency[static_cast<size_t>(e.left)].push_back(e.right);
    }
  }
  state.match_left.assign(static_cast<size_t>(graph.num_left()), -1);
  state.match_right.assign(static_cast<size_t>(graph.num_right()), -1);
  state.distance.assign(static_cast<size_t>(graph.num_left()), 0);

  while (state.Bfs()) {
    for (int32_t l = 0; l < graph.num_left(); ++l) {
      if (state.match_left[static_cast<size_t>(l)] == -1) state.Dfs(l);
    }
  }

  Matching result = Matching::Empty(graph.num_left(), graph.num_right());
  result.left_to_right = state.match_left;
  result.right_to_left = state.match_right;
  const auto weights = graph.ToDenseWeights();
  result.RecomputeTotals(weights);
  return result;
}

}  // namespace grouplink
