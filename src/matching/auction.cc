#include "matching/auction.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace grouplink {
namespace {

// One ε round of the forward auction on a dense value matrix
// (`bidders` x `objects`, bidders <= objects). Prices persist across
// rounds; assignments restart.
void AuctionRound(const std::vector<std::vector<double>>& value, double epsilon,
                  std::vector<double>& price, std::vector<int32_t>& bidder_to_object,
                  std::vector<int32_t>& object_to_bidder) {
  const int32_t num_bidders = static_cast<int32_t>(value.size());
  const int32_t num_objects = static_cast<int32_t>(price.size());
  bidder_to_object.assign(static_cast<size_t>(num_bidders), -1);
  object_to_bidder.assign(static_cast<size_t>(num_objects), -1);

  std::vector<int32_t> unassigned;
  for (int32_t i = 0; i < num_bidders; ++i) unassigned.push_back(i);

  while (!unassigned.empty()) {
    const int32_t bidder = unassigned.back();
    unassigned.pop_back();

    // Best and second-best net value over all objects.
    int32_t best_object = -1;
    double best_net = -std::numeric_limits<double>::infinity();
    double second_net = -std::numeric_limits<double>::infinity();
    for (int32_t j = 0; j < num_objects; ++j) {
      const double net =
          value[static_cast<size_t>(bidder)][static_cast<size_t>(j)] -
          price[static_cast<size_t>(j)];
      if (net > best_net) {
        second_net = best_net;
        best_net = net;
        best_object = j;
      } else if (net > second_net) {
        second_net = net;
      }
    }
    GL_CHECK_GE(best_object, 0);
    if (num_objects == 1) second_net = best_net;  // No competitor exists.

    // Bid up to indifference with the runner-up, plus epsilon.
    price[static_cast<size_t>(best_object)] += best_net - second_net + epsilon;

    const int32_t evicted = object_to_bidder[static_cast<size_t>(best_object)];
    if (evicted != -1) {
      bidder_to_object[static_cast<size_t>(evicted)] = -1;
      unassigned.push_back(evicted);
    }
    object_to_bidder[static_cast<size_t>(best_object)] = bidder;
    bidder_to_object[static_cast<size_t>(bidder)] = best_object;
  }
}

}  // namespace

Matching AuctionMaxWeightMatching(const BipartiteGraph& graph, double epsilon) {
  GL_CHECK_GT(epsilon, 0.0);
  const int32_t num_left = graph.num_left();
  const int32_t num_right = graph.num_right();
  Matching result = Matching::Empty(num_left, num_right);
  if (num_left == 0 || num_right == 0 || graph.edges().empty()) return result;

  // The ε-complementary-slackness optimality argument needs every object
  // priced by a live assignment, so the problem is squared: real bidders
  // are the first rows, and zero-value dummy bidders pad the smaller
  // side. Missing edges also have value 0; pairs worth 0 are dropped at
  // the end.
  const auto weights = graph.ToDenseWeights();
  const bool transposed = num_left > num_right;
  const int32_t real_bidders = transposed ? num_right : num_left;
  const int32_t objects = transposed ? num_left : num_right;
  const int32_t bidders = objects;  // real_bidders <= objects.
  std::vector<std::vector<double>> value(
      static_cast<size_t>(bidders),
      std::vector<double>(static_cast<size_t>(objects), 0.0));
  double max_value = 0.0;
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
      if (transposed) {
        value[static_cast<size_t>(r)][static_cast<size_t>(l)] = w;
      } else {
        value[static_cast<size_t>(l)][static_cast<size_t>(r)] = w;
      }
      max_value = std::max(max_value, w);
    }
  }

  // ε-scaling: each round tightens ε by 4x; prices carry over, which is
  // what makes later (small-ε) rounds cheap.
  std::vector<double> price(static_cast<size_t>(objects), 0.0);
  std::vector<int32_t> bidder_to_object;
  std::vector<int32_t> object_to_bidder;
  double eps = std::max(max_value / 2.0, epsilon);
  while (true) {
    AuctionRound(value, eps, price, bidder_to_object, object_to_bidder);
    if (eps <= epsilon) break;
    eps = std::max(eps / 4.0, epsilon);
  }

  for (int32_t bidder = 0; bidder < real_bidders; ++bidder) {
    const int32_t object = bidder_to_object[static_cast<size_t>(bidder)];
    if (object < 0) continue;
    const int32_t l = transposed ? object : bidder;
    const int32_t r = transposed ? bidder : object;
    const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
    if (w <= 0.0) continue;  // Parked on a non-edge.
    result.left_to_right[static_cast<size_t>(l)] = r;
    result.right_to_left[static_cast<size_t>(r)] = l;
    result.total_weight += w;
    ++result.size;
  }
  GL_DCHECK(result.IsConsistent());
  return result;
}

}  // namespace grouplink
