#include "matching/brute_force.h"

#include <vector>

#include "common/logging.h"

namespace grouplink {
namespace {

// Shared recursion over left nodes: each left node is either skipped or
// matched to a free right neighbor. `on_complete` sees every matching
// (weight, size) exactly once per distinct left->right assignment.
struct Enumerator {
  const std::vector<std::vector<double>>* weights;
  int32_t num_left;
  int32_t num_right;
  std::vector<int32_t> left_to_right;
  std::vector<bool> right_used;

  template <typename Callback>
  void Recurse(int32_t l, double weight, int32_t size, const Callback& on_complete) {
    if (l == num_left) {
      on_complete(weight, size, left_to_right);
      return;
    }
    // Leave l unmatched.
    Recurse(l + 1, weight, size, on_complete);
    for (int32_t r = 0; r < num_right; ++r) {
      const double w = (*weights)[static_cast<size_t>(l)][static_cast<size_t>(r)];
      if (w <= 0.0 || right_used[static_cast<size_t>(r)]) continue;
      right_used[static_cast<size_t>(r)] = true;
      left_to_right[static_cast<size_t>(l)] = r;
      Recurse(l + 1, weight + w, size + 1, on_complete);
      left_to_right[static_cast<size_t>(l)] = Matching::kUnmatched;
      right_used[static_cast<size_t>(r)] = false;
    }
  }
};

Enumerator MakeEnumerator(const BipartiteGraph& graph,
                          const std::vector<std::vector<double>>& weights) {
  Enumerator e;
  e.weights = &weights;
  e.num_left = graph.num_left();
  e.num_right = graph.num_right();
  e.left_to_right.assign(static_cast<size_t>(graph.num_left()), Matching::kUnmatched);
  e.right_used.assign(static_cast<size_t>(graph.num_right()), false);
  return e;
}

}  // namespace

Matching BruteForceMaxWeightMatching(const BipartiteGraph& graph) {
  GL_CHECK_LE(graph.num_left(), 12);
  const auto weights = graph.ToDenseWeights();
  Enumerator enumerator = MakeEnumerator(graph, weights);

  double best_weight = -1.0;
  std::vector<int32_t> best_assignment(static_cast<size_t>(graph.num_left()),
                                       Matching::kUnmatched);
  enumerator.Recurse(
      0, 0.0, 0,
      [&](double weight, int32_t /*size*/, const std::vector<int32_t>& assignment) {
        if (weight > best_weight) {
          best_weight = weight;
          best_assignment = assignment;
        }
      });

  Matching result = Matching::Empty(graph.num_left(), graph.num_right());
  result.left_to_right = best_assignment;
  for (int32_t l = 0; l < graph.num_left(); ++l) {
    const int32_t r = result.left_to_right[static_cast<size_t>(l)];
    if (r != Matching::kUnmatched) result.right_to_left[static_cast<size_t>(r)] = l;
  }
  result.RecomputeTotals(weights);
  return result;
}

double BruteForceMaxNormalizedScore(const BipartiteGraph& graph) {
  const int32_t total = graph.num_left() + graph.num_right();
  if (total == 0) return 1.0;
  if (graph.num_left() == 0 || graph.num_right() == 0) return 0.0;
  GL_CHECK_LE(graph.num_left(), 12);
  const auto weights = graph.ToDenseWeights();
  Enumerator enumerator = MakeEnumerator(graph, weights);

  double best = 0.0;
  enumerator.Recurse(
      0, 0.0, 0,
      [&](double weight, int32_t size, const std::vector<int32_t>& /*assignment*/) {
        const double denominator = static_cast<double>(total - size);
        GL_DCHECK(denominator > 0.0);
        best = std::max(best, weight / denominator);
      });
  return best;
}

}  // namespace grouplink
