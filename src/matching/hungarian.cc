#include "matching/hungarian.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/execution_context.h"
#include "common/logging.h"

namespace grouplink {
namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

// Contract predicate for GL_DCHECK: every row has exactly `num_right`
// columns and every weight is finite. A ragged matrix indexes out of
// bounds inside the solver; a NaN/inf weight corrupts the potentials and
// produces a silently wrong matching rather than a crash.
bool WeightsRectangularAndFinite(const std::vector<std::vector<double>>& weights,
                                 int32_t num_right) {
  for (const auto& row : weights) {
    if (static_cast<int32_t>(row.size()) != num_right) return false;
    for (const double w : row) {
      if (!std::isfinite(w)) return false;
    }
  }
  return true;
}

// Solves the rectangular assignment problem: assigns every row (n rows) to
// a distinct column (m >= n columns) minimizing total cost. Standard
// potential-based Kuhn-Munkres (1-indexed internally); O(n^2 m).
// Returns column_of_row (0-indexed), all rows assigned.
std::vector<int32_t> MinCostAssignment(const std::vector<std::vector<double>>& cost,
                                       const ExecutionContext* ctx) {
  const int32_t n = static_cast<int32_t>(cost.size());
  GL_CHECK_GT(n, 0);
  const int32_t m = static_cast<int32_t>(cost[0].size());
  GL_CHECK_GE(m, n);

  std::vector<double> u(static_cast<size_t>(n) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(m) + 1, 0.0);
  std::vector<int32_t> p(static_cast<size_t>(m) + 1, 0);    // Row matched to column j.
  std::vector<int32_t> way(static_cast<size_t>(m) + 1, 0);  // Alternating-path links.

  for (int32_t i = 1; i <= n; ++i) {
    // Each completed augmentation leaves a valid (partial) assignment of
    // rows 1..i-1, so stopping between rows yields a usable matching.
    if (ctx != nullptr && ctx->StopRequested()) break;
    p[0] = i;
    int32_t j0 = 0;
    std::vector<double> min_value(static_cast<size_t>(m) + 1, kInfinity);
    std::vector<bool> used(static_cast<size_t>(m) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int32_t i0 = p[static_cast<size_t>(j0)];
      int32_t j1 = -1;
      double delta = kInfinity;
      for (int32_t j = 1; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) continue;
        const double current = cost[static_cast<size_t>(i0) - 1][static_cast<size_t>(j) - 1] -
                               u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (current < min_value[static_cast<size_t>(j)]) {
          min_value[static_cast<size_t>(j)] = current;
          way[static_cast<size_t>(j)] = j0;
        }
        if (min_value[static_cast<size_t>(j)] < delta) {
          delta = min_value[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      GL_CHECK_GE(j1, 0);
      for (int32_t j = 0; j <= m; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(p[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          min_value[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (p[static_cast<size_t>(j0)] != 0);
    // Unwind the alternating path, flipping assignments.
    do {
      const int32_t j1 = way[static_cast<size_t>(j0)];
      p[static_cast<size_t>(j0)] = p[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int32_t> column_of_row(static_cast<size_t>(n), -1);
  for (int32_t j = 1; j <= m; ++j) {
    if (p[static_cast<size_t>(j)] > 0) {
      column_of_row[static_cast<size_t>(p[static_cast<size_t>(j)]) - 1] = j - 1;
    }
  }
  return column_of_row;
}

}  // namespace

Matching HungarianMaxWeightMatchingDense(
    const std::vector<std::vector<double>>& weights, const ExecutionContext* ctx) {
  const int32_t num_left = static_cast<int32_t>(weights.size());
  const int32_t num_right =
      num_left == 0 ? 0 : static_cast<int32_t>(weights[0].size());
  Matching result = Matching::Empty(num_left, num_right);
  if (num_left == 0 || num_right == 0) return result;
  GL_DCHECK(WeightsRectangularAndFinite(weights, num_right))
      << "Hungarian matcher requires a rectangular, finite weight matrix";

  // Orient so that rows are the smaller side (the assignment solver
  // requires n <= m), and negate weights to turn max-weight into min-cost.
  // Missing edges have weight 0 (= cost 0), so the forced "perfect on the
  // small side" assignment can always park surplus rows on cost-0 cells;
  // those pairs are dropped below.
  const bool transposed = num_left > num_right;
  const int32_t n = transposed ? num_right : num_left;
  const int32_t m = transposed ? num_left : num_right;
  std::vector<std::vector<double>> cost(
      static_cast<size_t>(n), std::vector<double>(static_cast<size_t>(m), 0.0));
  for (int32_t l = 0; l < num_left; ++l) {
    for (int32_t r = 0; r < num_right; ++r) {
      const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
      if (transposed) {
        cost[static_cast<size_t>(r)][static_cast<size_t>(l)] = -w;
      } else {
        cost[static_cast<size_t>(l)][static_cast<size_t>(r)] = -w;
      }
    }
  }

  const std::vector<int32_t> column_of_row = MinCostAssignment(cost, ctx);
  for (int32_t row = 0; row < n; ++row) {
    const int32_t col = column_of_row[static_cast<size_t>(row)];
    if (col < 0) continue;
    const int32_t l = transposed ? col : row;
    const int32_t r = transposed ? row : col;
    const double w = weights[static_cast<size_t>(l)][static_cast<size_t>(r)];
    if (w <= 0.0) continue;  // Padding pair (no real edge); drop it.
    result.left_to_right[static_cast<size_t>(l)] = r;
    result.right_to_left[static_cast<size_t>(r)] = l;
    result.total_weight += w;
    ++result.size;
  }
  GL_DCHECK(result.IsConsistent());
  return result;
}

Matching HungarianMaxWeightMatching(const BipartiteGraph& graph,
                                    const ExecutionContext* ctx) {
  return HungarianMaxWeightMatchingDense(graph.ToDenseWeights(), ctx);
}

}  // namespace grouplink
