#ifndef GROUPLINK_MATCHING_SEMI_MATCHING_H_
#define GROUPLINK_MATCHING_SEMI_MATCHING_H_

#include <cstdint>
#include <vector>

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Best-partner semi-matching: every node is paired with its heaviest
/// incident edge, partners may repeat. This relaxation of a matching is
/// computable in O(E) and is the engine of the group measure's upper
/// bound UB (see core/group_measures.h for the bound proof).
struct SemiMatching {
  /// Per left node: weight of its heaviest incident edge (0 if isolated).
  std::vector<double> best_left;
  /// Per right node: weight of its heaviest incident edge (0 if isolated).
  std::vector<double> best_right;
  /// Number of left / right nodes with at least one edge.
  int32_t covered_left = 0;
  int32_t covered_right = 0;

  /// Σ best_left.
  double SumBestLeft() const;
  /// Σ best_right.
  double SumBestRight() const;
};

/// Computes the semi-matching of `graph` in one pass over the edges.
SemiMatching ComputeSemiMatching(const BipartiteGraph& graph);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_SEMI_MATCHING_H_
