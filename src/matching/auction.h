#ifndef GROUPLINK_MATCHING_AUCTION_H_
#define GROUPLINK_MATCHING_AUCTION_H_

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Maximum-weight bipartite matching via Bertsekas' auction algorithm
/// with ε-scaling: unassigned "bidders" (the smaller side) repeatedly bid
/// their marginal value for their best "object", prices rise, and the
/// assignment converges to within `n · epsilon` of optimal weight.
///
/// `epsilon` is the final scaling step; the default is tight enough that
/// the result matches the Hungarian algorithm to ~1e-6 on [0, 1] weights
/// (cross-checked in the test suite). Zero-weight pairs are dropped from
/// the result exactly as in HungarianMaxWeightMatching.
///
/// Included as an independent implementation to cross-validate the
/// Hungarian matcher and as the classic alternative engine for the refine
/// step — often faster in practice on dense graphs despite the same
/// worst-case bound (benchmarked in bench_micro_matching).
[[nodiscard]] Matching AuctionMaxWeightMatching(const BipartiteGraph& graph,
                                  double epsilon = 1e-7);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_AUCTION_H_
