#include "matching/bipartite_graph.h"

#include <algorithm>

#include "common/logging.h"

namespace grouplink {

BipartiteGraph::BipartiteGraph(int32_t num_left, int32_t num_right)
    : num_left_(num_left),
      num_right_(num_right),
      left_adjacency_(static_cast<size_t>(std::max(num_left, 0))) {
  GL_CHECK_GE(num_left, 0);
  GL_CHECK_GE(num_right, 0);
}

void BipartiteGraph::AddEdge(int32_t left, int32_t right, double weight) {
  GL_CHECK_GE(left, 0);
  GL_CHECK_LT(left, num_left_);
  GL_CHECK_GE(right, 0);
  GL_CHECK_LT(right, num_right_);
  left_adjacency_[static_cast<size_t>(left)].push_back(
      static_cast<int32_t>(edges_.size()));
  edges_.push_back({left, right, weight});
}

const std::vector<int32_t>& BipartiteGraph::LeftAdjacency(int32_t left) const {
  GL_CHECK_GE(left, 0);
  GL_CHECK_LT(left, num_left_);
  return left_adjacency_[static_cast<size_t>(left)];
}

std::vector<std::vector<double>> BipartiteGraph::ToDenseWeights() const {
  std::vector<std::vector<double>> weights(
      static_cast<size_t>(num_left_),
      std::vector<double>(static_cast<size_t>(num_right_), 0.0));
  for (const BipartiteEdge& e : edges_) {
    double& cell = weights[static_cast<size_t>(e.left)][static_cast<size_t>(e.right)];
    cell = std::max(cell, e.weight);
  }
  return weights;
}

Matching Matching::Empty(int32_t num_left, int32_t num_right) {
  Matching m;
  m.left_to_right.assign(static_cast<size_t>(num_left), kUnmatched);
  m.right_to_left.assign(static_cast<size_t>(num_right), kUnmatched);
  return m;
}

void Matching::RecomputeTotals(const std::vector<std::vector<double>>& weights) {
  total_weight = 0.0;
  size = 0;
  for (size_t l = 0; l < left_to_right.size(); ++l) {
    const int32_t r = left_to_right[l];
    if (r == kUnmatched) continue;
    ++size;
    total_weight += weights[l][static_cast<size_t>(r)];
  }
}

bool Matching::IsConsistent() const {
  for (size_t l = 0; l < left_to_right.size(); ++l) {
    const int32_t r = left_to_right[l];
    if (r == kUnmatched) continue;
    if (r < 0 || static_cast<size_t>(r) >= right_to_left.size()) return false;
    if (right_to_left[static_cast<size_t>(r)] != static_cast<int32_t>(l)) return false;
  }
  for (size_t r = 0; r < right_to_left.size(); ++r) {
    const int32_t l = right_to_left[r];
    if (l == kUnmatched) continue;
    if (l < 0 || static_cast<size_t>(l) >= left_to_right.size()) return false;
    if (left_to_right[static_cast<size_t>(l)] != static_cast<int32_t>(r)) return false;
  }
  return true;
}

}  // namespace grouplink
