#ifndef GROUPLINK_MATCHING_GREEDY_H_
#define GROUPLINK_MATCHING_GREEDY_H_

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Builds a maximal matching by scanning edges in descending weight order
/// (ties broken by (left, right) index for determinism) and keeping every
/// edge whose endpoints are both still free.
///
/// Guarantees: the result is a maximal matching, and its total weight is at
/// least half the maximum-weight matching's (the classic 1/2-approximation)
/// — both properties are exercised by the test suite. O(E log E) time.
///
/// This is the cheap matching behind the group measure's greedy lower
/// bound and the fast path of the filter-and-refine pipeline.
[[nodiscard]] Matching GreedyMaxWeightMatching(const BipartiteGraph& graph);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_GREEDY_H_
