#include "matching/semi_matching.h"

#include <algorithm>

namespace grouplink {

double SemiMatching::SumBestLeft() const {
  double sum = 0.0;
  for (const double w : best_left) sum += w;
  return sum;
}

double SemiMatching::SumBestRight() const {
  double sum = 0.0;
  for (const double w : best_right) sum += w;
  return sum;
}

SemiMatching ComputeSemiMatching(const BipartiteGraph& graph) {
  SemiMatching result;
  result.best_left.assign(static_cast<size_t>(graph.num_left()), 0.0);
  result.best_right.assign(static_cast<size_t>(graph.num_right()), 0.0);
  std::vector<bool> left_covered(static_cast<size_t>(graph.num_left()), false);
  std::vector<bool> right_covered(static_cast<size_t>(graph.num_right()), false);
  for (const BipartiteEdge& e : graph.edges()) {
    if (e.weight <= 0.0) continue;
    const size_t l = static_cast<size_t>(e.left);
    const size_t r = static_cast<size_t>(e.right);
    result.best_left[l] = std::max(result.best_left[l], e.weight);
    result.best_right[r] = std::max(result.best_right[r], e.weight);
    left_covered[l] = true;
    right_covered[r] = true;
  }
  result.covered_left =
      static_cast<int32_t>(std::count(left_covered.begin(), left_covered.end(), true));
  result.covered_right = static_cast<int32_t>(
      std::count(right_covered.begin(), right_covered.end(), true));
  return result;
}

}  // namespace grouplink
