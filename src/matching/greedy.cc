#include "matching/greedy.h"

#include <algorithm>

namespace grouplink {

Matching GreedyMaxWeightMatching(const BipartiteGraph& graph) {
  std::vector<BipartiteEdge> edges = graph.edges();
  std::sort(edges.begin(), edges.end(),
            [](const BipartiteEdge& a, const BipartiteEdge& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              if (a.left != b.left) return a.left < b.left;
              return a.right < b.right;
            });

  Matching result = Matching::Empty(graph.num_left(), graph.num_right());
  for (const BipartiteEdge& e : edges) {
    if (e.weight <= 0.0) continue;
    if (result.left_to_right[static_cast<size_t>(e.left)] != Matching::kUnmatched) {
      continue;
    }
    if (result.right_to_left[static_cast<size_t>(e.right)] != Matching::kUnmatched) {
      continue;
    }
    result.left_to_right[static_cast<size_t>(e.left)] = e.right;
    result.right_to_left[static_cast<size_t>(e.right)] = e.left;
    result.total_weight += e.weight;
    ++result.size;
  }
  return result;
}

}  // namespace grouplink
