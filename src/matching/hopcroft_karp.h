#ifndef GROUPLINK_MATCHING_HOPCROFT_KARP_H_
#define GROUPLINK_MATCHING_HOPCROFT_KARP_H_

#include "matching/bipartite_graph.h"

namespace grouplink {

/// Maximum-cardinality bipartite matching (Hopcroft-Karp, O(E·√V)).
/// Edge weights are ignored for the matching itself; the returned
/// Matching's total_weight sums the weights of the chosen edges.
///
/// Used for the binary-similarity case, where BM degenerates to Jaccard
/// and only the matching's *size* matters, and as a cardinality oracle in
/// tests and the bound analyses.
[[nodiscard]] Matching HopcroftKarpMatching(const BipartiteGraph& graph);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_HOPCROFT_KARP_H_
