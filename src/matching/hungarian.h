#ifndef GROUPLINK_MATCHING_HUNGARIAN_H_
#define GROUPLINK_MATCHING_HUNGARIAN_H_

#include "matching/bipartite_graph.h"

namespace grouplink {

class ExecutionContext;

/// Computes a maximum-weight bipartite matching of `graph` with the
/// Hungarian (Kuhn-Munkres) algorithm using dual potentials.
///
/// The graph need not be balanced or complete; nodes may stay unmatched.
/// Zero-weight pairs never appear in the result (with all real edge
/// weights > 0, the result is exactly a maximum-weight matching; it is
/// also maximal, because adding any remaining positive edge would increase
/// the weight).
///
/// With a non-null `ctx`, polls StopRequested() between row augmentations
/// and returns early with the rows matched so far — a valid matching
/// whose weight is <= the optimum, so measures built on it (BM) stay
/// sound upper-boundable and a stopped refine can only under-link.
///
/// Complexity: O(n² · m) time with n = min side size, m = max side size,
/// O(n · m) space (dense weight matrix). This is the "refine" workhorse of
/// the group linkage measure BM.
[[nodiscard]] Matching HungarianMaxWeightMatching(const BipartiteGraph& graph,
                                    const ExecutionContext* ctx = nullptr);

/// As above, operating directly on a dense weight matrix
/// (weights[l][r] == 0 means "no edge"). Exposed for benchmarks.
[[nodiscard]] Matching HungarianMaxWeightMatchingDense(
    const std::vector<std::vector<double>>& weights,
    const ExecutionContext* ctx = nullptr);

}  // namespace grouplink

#endif  // GROUPLINK_MATCHING_HUNGARIAN_H_
