#ifndef GROUPLINK_STORAGE_BUFFER_MANAGER_H_
#define GROUPLINK_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace grouplink {
namespace storage {

/// Buffer-pool counters of one BufferManager instance (the storage.*
/// process metrics aggregate across instances; these are per-pool, which
/// is what the per-budget bench rows report).
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
};

class BufferManager;

/// RAII pin on one verified page. While a handle lives, its frame cannot
/// be evicted, so payload() stays valid and immutable. Move-only; the
/// destructor unpins.
class PageHandle {
 public:
  PageHandle() = default;
  ~PageHandle() { Release(); }
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;

  [[nodiscard]] const uint8_t* payload() const { return payload_; }
  [[nodiscard]] uint32_t payload_len() const { return payload_len_; }
  [[nodiscard]] PageType type() const { return type_; }
  [[nodiscard]] bool valid() const { return manager_ != nullptr; }

 private:
  friend class BufferManager;
  PageHandle(BufferManager* manager, size_t frame, const uint8_t* payload,
             uint32_t payload_len, PageType type)
      : manager_(manager), frame_(frame), payload_(payload),
        payload_len_(payload_len), type_(type) {}
  void Release();

  BufferManager* manager_ = nullptr;
  size_t frame_ = 0;
  const uint8_t* payload_ = nullptr;
  uint32_t payload_len_ = 0;
  PageType type_ = PageType::kSegment;
};

/// Fixed-budget page cache over one immutable PageFile: ref-counted
/// frames, clock (second-chance) eviction, checksum verification on
/// every disk read. The page budget is the out-of-core contract — a
/// StoredCorpus touches at most `pool_pages` pages of RAM for paged
/// data no matter how large the store is.
///
/// Thread safety: fully internally synchronized; any number of threads
/// may Pin/unpin concurrently. v1 keeps one global mutex and performs
/// the miss I/O under it — correctness first; the differential and TSan
/// stress suites pin the behavior so a later lock split can't drift.
///
/// Eviction: clock hand over the frames; pinned frames are skipped,
/// recently-hit frames get a second chance. When every frame is pinned,
/// Pin returns FailedPrecondition("buffer pool exhausted") instead of
/// blocking — callers hold at most one pin at a time (SegmentReader's
/// contract), so a pool of >= num_threads frames can never see it.
class BufferManager {
 public:
  /// `num_pages` bounds the valid page-id range; `pool_pages` (>= 1) is
  /// the frame budget.
  BufferManager(std::shared_ptr<const PageFile> file, uint32_t page_bytes,
                uint64_t num_pages, size_t pool_pages);

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Pins `page_id`, reading and checksum-verifying it on a miss.
  /// Errors: OutOfRange (bad page id), DataLoss (checksum/format),
  /// IoError (read failure), FailedPrecondition (all frames pinned).
  [[nodiscard]] Result<PageHandle> Pin(uint64_t page_id);

  [[nodiscard]] size_t pool_pages() const { return pool_pages_; }
  [[nodiscard]] uint32_t page_bytes() const { return page_bytes_; }
  [[nodiscard]] uint64_t num_pages() const { return num_pages_; }
  [[nodiscard]] BufferStats stats() const;

 private:
  friend class PageHandle;

  struct Frame {
    uint64_t page_id = 0;
    int64_t pins = 0;
    bool valid = false;
    bool referenced = false;  // Clock second-chance bit.
    PageType type = PageType::kSegment;
    uint32_t payload_len = 0;
    std::vector<uint8_t> data;  // page_bytes once loaded.
  };

  void Unpin(size_t frame_index);
  /// Clock sweep for an unpinned victim; pool_pages_ marks failure.
  size_t FindVictimLocked() GL_REQUIRES(mu_);

  const std::shared_ptr<const PageFile> file_;
  const uint32_t page_bytes_;
  const uint64_t num_pages_;
  const size_t pool_pages_;  // == frames_.size(), fixed at construction.

  mutable Mutex mu_;
  std::vector<Frame> frames_ GL_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, size_t> page_map_ GL_GUARDED_BY(mu_);
  size_t clock_hand_ GL_GUARDED_BY(mu_) = 0;
  BufferStats stats_ GL_GUARDED_BY(mu_);
};

/// Byte-addressed view of one segment (a logical byte stream spanning
/// whole pages, each page holding PagePayloadCapacity(page_bytes) bytes
/// except possibly the last). Reads pin one page at a time through the
/// buffer manager — never more — which is what makes the tiny-pool
/// configurations of the differential suite deadlock-free by design.
class SegmentReader {
 public:
  SegmentReader() = default;
  SegmentReader(BufferManager* buffer, uint64_t first_page, uint64_t length);

  /// Copies `[offset, offset + n)` of the segment into `out`.
  [[nodiscard]] Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;
  /// Same, into a fresh buffer.
  [[nodiscard]] Result<std::vector<uint8_t>> ReadAt(uint64_t offset, size_t n) const;

  [[nodiscard]] uint64_t length() const { return length_; }

 private:
  BufferManager* buffer_ = nullptr;
  uint64_t first_page_ = 0;
  uint64_t length_ = 0;
};

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_BUFFER_MANAGER_H_
