#include "storage/page_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/fault_injection.h"
#include "common/logging.h"

namespace grouplink {
namespace storage {
namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

/// Directory part of `path` ("." when there is none), for durable rename.
std::string DirectoryOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status FsyncFd(int fd, const std::string& path) {
  if (FaultInjector::Default().ShouldFire(faults::kFailFsync)) {
    return Status::IoError("injected fsync failure: " + path);
  }
  if (::fsync(fd) != 0) return Status::IoError(ErrnoMessage("fsync failed for", path));
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<PageFile>> PageFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) return Status::NotFound("no snapshot store at " + path);
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(ErrnoMessage("cannot stat", path));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<PageFile>(
      new PageFile(fd, static_cast<uint64_t>(st.st_size), path));
}

PageFile::~PageFile() { ::close(fd_); }

Status PageFile::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  size_t done = 0;
  while (done < n) {
    const ssize_t got = ::pread(fd_, out + done, n - done,
                                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pread failed for", path_));
    }
    if (got == 0) {
      return Status::DataLoss("truncated store: read past end of " + path_);
    }
    done += static_cast<size_t>(got);
  }
  return Status::Ok();
}

Result<std::unique_ptr<PageWriter>> PageWriter::Create(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IoError(ErrnoMessage("cannot create", path));
  return std::unique_ptr<PageWriter>(new PageWriter(fd, path));
}

PageWriter::~PageWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status PageWriter::Append(const uint8_t* frame, size_t n) {
  GL_CHECK_GE(fd_, 0) << "Append after Close";
  size_t to_write = n;
  bool torn = false;
  if (FaultInjector::Default().ShouldFire(faults::kTornWrite)) {
    // A crash mid-write leaves a prefix of the page on disk. Persist the
    // prefix for real — recovery must reject it via the page checksum —
    // then report the failure the process would never have seen.
    to_write = n / 2;
    torn = true;
  }
  size_t done = 0;
  while (done < to_write) {
    const ssize_t wrote = ::write(fd_, frame + done, to_write - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write failed for", path_));
    }
    done += static_cast<size_t>(wrote);
  }
  if (torn) return Status::IoError("injected torn write: " + path_);
  bytes_written_ += n;
  return Status::Ok();
}

Status PageWriter::Sync() {
  GL_CHECK_GE(fd_, 0) << "Sync after Close";
  return FsyncFd(fd_, path_);
}

Status PageWriter::Close() {
  GL_CHECK_GE(fd_, 0) << "double Close";
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Status::IoError(ErrnoMessage("close failed for", path_));
  return Status::Ok();
}

Status AtomicReplace(const std::string& tmp_path, const std::string& final_path) {
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename failed for", final_path));
  }
  // Make the rename itself durable: without the directory fsync a crash
  // can forget the publication (acceptable — the old store survives) or,
  // on some filesystems, expose a zero-length file (not acceptable).
  const std::string dir = DirectoryOf(final_path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) return Status::IoError(ErrnoMessage("cannot open directory", dir));
  const Status status = FsyncFd(dir_fd, dir);
  ::close(dir_fd);
  return status;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::IoError(ErrnoMessage("unlink failed for", path));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace storage
}  // namespace grouplink
