#ifndef GROUPLINK_STORAGE_STORE_FORMAT_H_
#define GROUPLINK_STORAGE_STORE_FORMAT_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/linkage_engine.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "text/vocabulary.h"

namespace grouplink {
namespace storage {

/// Internal layout contract shared by SnapshotStore (persist + full
/// recovery) and StoredCorpus (paged probes). Not a public API.
///
/// A store file is: page 0 = header, then each segment's pages (every
/// segment starts on a fresh page; a segment is a logical byte stream
/// filling each page's payload to capacity except possibly the last),
/// then the seal page — written last, so its presence proves the persist
/// ran to completion.

enum SegmentId : uint32_t {
  /// Engine config, epoch, group membership/liveness/labels, record ->
  /// group map, tombstone bitmap, link pairs, cluster labels.
  kMeta = 0,
  /// Index vocabulary: the one token dictionary holding strings. Token
  /// id i is the i-th entry (string + document frequency).
  kDictIndex = 1,
  /// Epoch vocabulary, dictionary-encoded against kDictIndex: every
  /// entry is an index-vocab id reference + df — no string is stored
  /// twice.
  kDictEpoch = 2,
  /// Per-token byte length of each posting list in kPostings (prefix
  /// sums give random access).
  kPostingsDir = 3,
  /// Delta+varint compressed posting lists (doc ids ascending).
  kPostings = 4,
  /// Per-record byte length of each vector in kVectors.
  kVectorsDir = 5,
  /// Per-record TF-IDF vectors: delta+varint ids, weights as raw
  /// IEEE-754 bits (bit-identical round trip).
  kVectors = 6,
  /// Per-record sorted index token sets as passed to
  /// InvertedIndex::AddDocument — including entries of tombstoned,
  /// not-yet-compacted documents, so recovery rebuilds the exact index.
  kDocs = 7,
  /// Per-record raw token occurrences (index-vocab ids, original order,
  /// repeats kept) — what the warm-restart writer rebuild ingests.
  kRawTokens = 8,
  kNumSegments = 9,
};

/// Decoded header + seal: the structural directory of one store file.
struct StoreInfo {
  struct Segment {
    uint64_t first_page = 0;
    uint64_t length = 0;  // Logical byte length.
  };
  uint32_t page_bytes = 0;
  uint64_t num_pages = 0;
  std::array<Segment, kNumSegments> segments;

  [[nodiscard]] uint64_t PagesOf(SegmentId id) const {
    const uint64_t cap = PagePayloadCapacity(page_bytes);
    return (segments[id].length + cap - 1) / cap;
  }
};

/// Builds the header-page payload for `info`.
[[nodiscard]] std::vector<uint8_t> EncodeHeaderPayload(const StoreInfo& info);
/// Builds the seal-page payload (`epoch` is informational).
[[nodiscard]] std::vector<uint8_t> EncodeSealPayload(const StoreInfo& info,
                                                     int64_t epoch);

/// Reads and fully validates the structural shell of a store: sniffs the
/// page size, checksum-verifies the header and seal pages, and
/// cross-checks the directory against the file size. Every corruption
/// here surfaces Status::DataLoss (a missing file is NotFound).
[[nodiscard]] Result<StoreInfo> ReadStoreInfo(const PageFile& file);

/// Reads one whole segment through direct page reads, checksum-verifying
/// every page (used by full recovery, which scans the file anyway).
[[nodiscard]] Result<std::vector<uint8_t>> ReadWholeSegment(const PageFile& file,
                                                            const StoreInfo& info,
                                                            SegmentId id);

// --- Segment codecs. Encode/Decode pairs must mirror each other
// --- field-for-field; the differential suite holds them to bit-identity.

/// Decoded kMeta segment.
struct MetaData {
  LinkageConfig config;
  int64_t epoch = 0;
  int64_t num_records = 0;
  int64_t num_groups = 0;
  int32_t num_alive_groups = 0;
  std::vector<int32_t> record_group;
  std::vector<char> record_removed;  // Index tombstones, per record.
  std::vector<char> group_alive;
  std::vector<std::string> group_labels;
  std::vector<std::vector<int32_t>> group_records;
  std::vector<std::pair<int32_t, int32_t>> linked_pairs;
  std::vector<size_t> cluster_labels;
};

void EncodeMeta(const MetaData& meta, std::vector<uint8_t>& out);
[[nodiscard]] Status DecodeMeta(const std::vector<uint8_t>& bytes, MetaData* out);

void EncodeIndexVocab(const Vocabulary& vocab, std::vector<uint8_t>& out);
[[nodiscard]] Result<Vocabulary> DecodeIndexVocab(const std::vector<uint8_t>& bytes);

/// `index_vocab` supplies the strings the epoch entries reference.
void EncodeEpochVocab(const Vocabulary& epoch_vocab, const Vocabulary& index_vocab,
                      std::vector<uint8_t>& out);
[[nodiscard]] Result<Vocabulary> DecodeEpochVocab(const std::vector<uint8_t>& bytes,
                                                  const Vocabulary& index_vocab);

/// Decodes a directory segment (per-entry byte lengths) into prefix-sum
/// offsets: out[i] is entry i's byte offset, out[count] the total, which
/// must equal `expected_total`.
[[nodiscard]] Status DecodeDirectory(const std::vector<uint8_t>& bytes,
                                     uint64_t expected_total,
                                     std::vector<uint64_t>* offsets);

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_STORE_FORMAT_H_
