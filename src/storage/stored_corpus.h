#ifndef GROUPLINK_STORAGE_STORED_CORPUS_H_
#define GROUPLINK_STORAGE_STORED_CORPUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/snapshot.h"
#include "storage/buffer_manager.h"
#include "storage/snapshot_store.h"
#include "storage/store_format.h"

namespace grouplink {
namespace storage {

/// Out-of-core LinkQuery serving directly from a store file: the big
/// per-record data — posting lists and TF-IDF vectors — stays on disk
/// and is paged in through a fixed-budget BufferManager, so a corpus
/// much larger than the buffer pool can be served. Only the compact
/// metadata (dictionaries, group structure, tombstones, directories) is
/// resident.
///
/// Decision-procedure contract: LinkQuery here answers bit-identically
/// to CorpusSnapshot::LinkQuery over the same epoch — same candidates,
/// same similarity arithmetic (the stored weights are raw IEEE-754
/// bits), same filter-and-refine ladder. The differential suite
/// (tests/storage_differential_test.cc) holds both paths to one link
/// set across thread counts and buffer budgets, down to a
/// pathologically tiny pool.
///
/// Thread safety: every method is const over immutable resident state;
/// the buffer pool is internally synchronized. Any number of threads
/// may query concurrently. Queries pin at most one page at a time, so
/// even a one-frame pool makes progress.
class StoredCorpus {
 public:
  /// Opens the store at `path`, loading resident metadata and building
  /// a buffer pool of `options.buffer_pool_pages` frames
  /// (`options.page_bytes` is ignored — the store dictates it).
  /// Errors: NotFound, DataLoss, IoError.
  [[nodiscard]] static Result<std::unique_ptr<StoredCorpus>> Open(
      const std::string& path, const StorageOptions& options = {});

  /// Links `group` against the stored corpus; see the class contract.
  /// Paged reads can fail (corruption discovered lazily, pool
  /// exhaustion), hence the Result the in-RAM path does not need.
  [[nodiscard]] Result<CorpusSnapshot::QueryResult> LinkQuery(
      const GroupArrival& group,
      const CorpusSnapshot::QueryOptions& options = {}) const;

  [[nodiscard]] int64_t epoch() const { return meta_.epoch; }
  [[nodiscard]] int32_t num_records() const {
    return static_cast<int32_t>(meta_.num_records);
  }
  [[nodiscard]] int32_t num_groups() const {
    return static_cast<int32_t>(meta_.num_groups);
  }
  [[nodiscard]] const LinkageConfig& engine_config() const { return meta_.config; }
  /// Buffer-pool counters since Open (per-budget bench rows).
  [[nodiscard]] BufferStats buffer_stats() const { return buffer_->stats(); }
  [[nodiscard]] size_t pool_pages() const { return buffer_->pool_pages(); }

 private:
  StoredCorpus() = default;

  /// Candidate groups of the probe (ascending, deduplicated): live
  /// groups owning a non-tombstoned record that shares an index token.
  [[nodiscard]] Result<std::vector<int32_t>> CandidateGroups(
      const std::vector<std::vector<int32_t>>& probe_token_ids) const;

  /// Reads and decodes record `r`'s TF-IDF vector from the paged
  /// vectors segment.
  [[nodiscard]] Result<SparseVector> ReadVector(int32_t r) const;

  // Resident metadata (immutable after Open).
  MetaData meta_;
  Vocabulary index_vocab_;
  Vocabulary epoch_vocab_;
  std::vector<uint64_t> postings_offsets_;  // Prefix sums, size |vocab|+1.
  std::vector<uint64_t> vectors_offsets_;   // Prefix sums, size n_records+1.

  // Paged data plumbing. The BufferManager is internally synchronized;
  // reaching it through const methods is safe by its contract.
  std::shared_ptr<const PageFile> file_;
  std::unique_ptr<BufferManager> buffer_;
  SegmentReader postings_reader_;
  SegmentReader vectors_reader_;
};

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_STORED_CORPUS_H_
