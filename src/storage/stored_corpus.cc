#include "storage/stored_corpus.h"

#include <algorithm>
#include <utility>

#include "common/execution_context.h"
#include "common/logging.h"
#include "core/filter_refine.h"
#include "matching/bipartite_graph.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"

namespace grouplink {
namespace storage {

Result<std::unique_ptr<StoredCorpus>> StoredCorpus::Open(
    const std::string& path, const StorageOptions& options) {
  GL_ASSIGN_OR_RETURN(std::unique_ptr<PageFile> opened, PageFile::Open(path));
  std::shared_ptr<const PageFile> file = std::move(opened);
  GL_ASSIGN_OR_RETURN(const StoreInfo info, ReadStoreInfo(*file));

  std::unique_ptr<StoredCorpus> corpus(new StoredCorpus());
  corpus->file_ = file;

  // Resident metadata: everything except the postings and vectors
  // segments, whose bytes stay on disk behind the buffer pool.
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> meta_bytes,
                      ReadWholeSegment(*file, info, kMeta));
  GL_RETURN_IF_ERROR(DecodeMeta(meta_bytes, &corpus->meta_));
  GL_RETURN_IF_ERROR(corpus->meta_.config.Validate());
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> dict_bytes,
                      ReadWholeSegment(*file, info, kDictIndex));
  GL_ASSIGN_OR_RETURN(corpus->index_vocab_, DecodeIndexVocab(dict_bytes));
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> epoch_dict_bytes,
                      ReadWholeSegment(*file, info, kDictEpoch));
  GL_ASSIGN_OR_RETURN(corpus->epoch_vocab_,
                      DecodeEpochVocab(epoch_dict_bytes, corpus->index_vocab_));
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> postings_dir,
                      ReadWholeSegment(*file, info, kPostingsDir));
  GL_RETURN_IF_ERROR(DecodeDirectory(postings_dir, info.segments[kPostings].length,
                                     &corpus->postings_offsets_));
  if (corpus->postings_offsets_.size() != corpus->index_vocab_.size() + 1) {
    return Status::DataLoss("postings directory entry count mismatch");
  }
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> vectors_dir,
                      ReadWholeSegment(*file, info, kVectorsDir));
  GL_RETURN_IF_ERROR(DecodeDirectory(vectors_dir, info.segments[kVectors].length,
                                     &corpus->vectors_offsets_));
  if (corpus->vectors_offsets_.size() !=
      static_cast<size_t>(corpus->meta_.num_records) + 1) {
    return Status::DataLoss("vectors directory entry count mismatch");
  }

  corpus->buffer_ = std::make_unique<BufferManager>(
      file, info.page_bytes, info.num_pages, options.buffer_pool_pages);
  corpus->postings_reader_ =
      SegmentReader(corpus->buffer_.get(), info.segments[kPostings].first_page,
                    info.segments[kPostings].length);
  corpus->vectors_reader_ =
      SegmentReader(corpus->buffer_.get(), info.segments[kVectors].first_page,
                    info.segments[kVectors].length);
  return corpus;
}

Result<std::vector<int32_t>> StoredCorpus::CandidateGroups(
    const std::vector<std::vector<int32_t>>& probe_token_ids) const {
  // Same candidate set as CorpusSnapshot::CandidateGroupsForProbe: per
  // probe record, documents sharing any token (tombstones excluded),
  // mapped to their live groups; the final sort+unique makes per-list
  // duplicate hits harmless, exactly as in the in-RAM path.
  std::vector<int32_t> groups;
  std::vector<int32_t> postings;
  for (const std::vector<int32_t>& ids : probe_token_ids) {
    for (const int32_t token : ids) {
      const size_t t = static_cast<size_t>(token);
      const uint64_t begin = postings_offsets_[t];
      const size_t n_bytes = static_cast<size_t>(postings_offsets_[t + 1] - begin);
      if (n_bytes == 0) continue;  // Token with an empty posting list.
      GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                          postings_reader_.ReadAt(begin, n_bytes));
      ByteReader reader(bytes.data(), bytes.size());
      GL_RETURN_IF_ERROR(reader.ReadDeltaVarints(&postings));
      if (!reader.AtEnd()) {
        return Status::DataLoss("trailing bytes in posting list");
      }
      for (const int32_t doc : postings) {
        if (static_cast<size_t>(doc) >= static_cast<size_t>(meta_.num_records)) {
          return Status::DataLoss("posting references a record out of range");
        }
        if (meta_.record_removed[static_cast<size_t>(doc)] != 0) continue;
        const int32_t g = meta_.record_group[static_cast<size_t>(doc)];
        if (meta_.group_alive[static_cast<size_t>(g)] == 0) continue;
        groups.push_back(g);
      }
    }
  }
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

Result<SparseVector> StoredCorpus::ReadVector(int32_t r) const {
  const size_t index = static_cast<size_t>(r);
  const uint64_t begin = vectors_offsets_[index];
  const size_t n_bytes = static_cast<size_t>(vectors_offsets_[index + 1] - begin);
  SparseVector vector;
  if (n_bytes == 0) return vector;  // Tombstoned record: empty vector.
  GL_ASSIGN_OR_RETURN(const std::vector<uint8_t> bytes,
                      vectors_reader_.ReadAt(begin, n_bytes));
  ByteReader reader(bytes.data(), bytes.size());
  GL_RETURN_IF_ERROR(reader.ReadDeltaVarints(&vector.ids));
  vector.weights.resize(vector.ids.size());
  for (double& w : vector.weights) {
    GL_ASSIGN_OR_RETURN(w, reader.ReadDouble());
  }
  if (!reader.AtEnd()) {
    return Status::DataLoss("trailing bytes in record vector");
  }
  return vector;
}

Result<CorpusSnapshot::QueryResult> StoredCorpus::LinkQuery(
    const GroupArrival& group, const CorpusSnapshot::QueryOptions& options) const {
  GL_CHECK(!group.record_texts.empty()) << "groups must have records";

  CorpusSnapshot::QueryResult result;
  result.epoch = meta_.epoch;

  // Probe preparation: field-for-field the in-RAM path's (see
  // CorpusSnapshot::LinkQuery) — tokenize, map into the index id space,
  // vectorize against the epoch vocabulary.
  const size_t probe_size = group.record_texts.size();
  std::vector<std::vector<int32_t>> probe_ids(probe_size);
  std::vector<SparseVector> probe_vectors(probe_size);
  const TfIdfVectorizer vectorizer(&epoch_vocab_);
  for (size_t i = 0; i < probe_size; ++i) {
    const std::vector<std::string> raw = Tokenize(group.record_texts[i]);
    const std::vector<std::string> set = ToTokenSet(raw);
    for (const std::string& token : set) {
      const int32_t id = index_vocab_.GetId(token);
      if (id != Vocabulary::kUnknownToken) probe_ids[i].push_back(id);
      if (epoch_vocab_.GetId(token) == Vocabulary::kUnknownToken) {
        ++result.oov_tokens;
      }
    }
    std::sort(probe_ids[i].begin(), probe_ids[i].end());
    probe_vectors[i] = vectorizer.Vectorize(raw);
  }

  ExecutionContext ctx;
  if (options.deadline_ms > 0.0) ctx.SetDeadline(options.deadline_ms);
  ctx.SetCancellation(options.cancellation);
  ctx.SetMaxCandidatePairs(options.max_candidate_pairs);
  ctx.SetMaxMatcherCost(options.max_matcher_cost);

  GL_ASSIGN_OR_RETURN(std::vector<int32_t> candidates,
                      CandidateGroups(probe_ids));
  const size_t cap = ctx.EffectiveCandidateCap(candidates.size());
  if (cap < candidates.size()) {
    candidates.resize(cap);
    ctx.NoteDegraded();
  }
  result.candidates = candidates.size();

  FilterRefineConfig fr_config;
  fr_config.theta = meta_.config.theta;
  fr_config.group_threshold = meta_.config.group_threshold;
  fr_config.use_upper_bound_filter =
      meta_.config.use_filter_refine && meta_.config.use_upper_bound_filter;
  fr_config.use_lower_bound_accept =
      meta_.config.use_filter_refine && meta_.config.use_lower_bound_accept;

  const int32_t size_right = static_cast<int32_t>(probe_size);
  for (const int32_t g : candidates) {
    if (ctx.StopRequested()) {
      ctx.NoteDegraded();
      break;
    }
    const std::vector<int32_t>& left =
        meta_.group_records[static_cast<size_t>(g)];
    const int32_t size_left = static_cast<int32_t>(left.size());
    BipartiteGraph graph(size_left, size_right);
    for (size_t i = 0; i < left.size(); ++i) {
      // The one paged read per corpus record; weights are the exact
      // stored bits, so every similarity below equals the in-RAM one.
      GL_ASSIGN_OR_RETURN(const SparseVector corpus_vector,
                          ReadVector(left[i]));
      for (size_t j = 0; j < probe_size; ++j) {
        const double s =
            PrenormalizedCosineSimilarity(corpus_vector, probe_vectors[j]);
        if (s >= meta_.config.theta) {
          graph.AddEdge(static_cast<int32_t>(i), static_cast<int32_t>(j), s);
        }
      }
    }
    if (DecideGraphLinked(graph, size_left, size_right, fr_config, &ctx)) {
      result.linked_to.push_back(g);
    }
  }
  result.degraded = ctx.degraded();
  return result;
}

}  // namespace storage
}  // namespace grouplink
