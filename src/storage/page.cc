#include "storage/page.h"

#include <array>

#include "common/logging.h"

namespace grouplink {
namespace storage {
namespace {

/// Software CRC-32 table (polynomial 0xEDB88320, the reflected IEEE
/// form). Built once; table lookup keeps page verification cheap enough
/// to run on every buffer-pool miss without showing up in profiles.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

Status Truncated(const char* what) {
  return Status::DataLoss(std::string("truncated or malformed store data: ") + what);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  const auto& table = CrcTable();
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void PutVarint(std::vector<uint8_t>& out, uint64_t value) {
  while (value >= 0x80u) {
    out.push_back(static_cast<uint8_t>(value) | 0x80u);
    value >>= 7;
  }
  out.push_back(static_cast<uint8_t>(value));
}

void PutFixed32(std::vector<uint8_t>& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void PutFixed64(std::vector<uint8_t>& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(value >> (8 * i)));
}

void PutDouble(std::vector<uint8_t>& out, double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value), "double must be 64-bit");
  std::memcpy(&bits, &value, sizeof(bits));
  PutFixed64(out, bits);
}

void PutString(std::vector<uint8_t>& out, const std::string& value) {
  PutVarint(out, value.size());
  out.insert(out.end(), value.begin(), value.end());
}

void PutDeltaVarints(std::vector<uint8_t>& out, const std::vector<int32_t>& sorted) {
  PutVarint(out, sorted.size());
  int32_t prev = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    GL_DCHECK_GE(sorted[i], i == 0 ? 0 : prev);
    PutVarint(out, static_cast<uint64_t>(sorted[i] - (i == 0 ? 0 : prev)));
    prev = sorted[i];
  }
}

Result<uint64_t> ByteReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (pos_ < size_) {
    const uint8_t byte = data_[pos_++];
    if (shift == 63 && byte > 1) return Truncated("varint overflow");
    value |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) return value;
    shift += 7;
    if (shift > 63) return Truncated("varint overflow");
  }
  return Truncated("varint");
}

Result<uint32_t> ByteReader::ReadFixed32() {
  if (remaining() < 4) return Truncated("fixed32");
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) value |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return value;
}

Result<uint64_t> ByteReader::ReadFixed64() {
  if (remaining() < 8) return Truncated("fixed64");
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return value;
}

Result<double> ByteReader::ReadDouble() {
  GL_ASSIGN_OR_RETURN(const uint64_t bits, ReadFixed64());
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

Result<std::string> ByteReader::ReadString() {
  GL_ASSIGN_OR_RETURN(const uint64_t length, ReadVarint());
  if (length > remaining()) return Truncated("string");
  std::string value(reinterpret_cast<const char*>(data_ + pos_),
                    static_cast<size_t>(length));
  pos_ += static_cast<size_t>(length);
  return value;
}

Status ByteReader::ReadDeltaVarints(std::vector<int32_t>* out) {
  GL_ASSIGN_OR_RETURN(const uint64_t count, ReadVarint());
  // Every encoded entry is at least one byte, so count can never exceed
  // the remaining bytes in a well-formed stream; rejecting early keeps a
  // corrupt count from triggering a huge allocation.
  if (count > remaining()) return Truncated("delta list count");
  out->clear();
  out->reserve(static_cast<size_t>(count));
  int64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    GL_ASSIGN_OR_RETURN(const uint64_t delta, ReadVarint());
    const int64_t value = prev + static_cast<int64_t>(delta);
    if (value < 0 || value > INT32_MAX) return Truncated("delta list range");
    out->push_back(static_cast<int32_t>(value));
    prev = value;
  }
  return Status::Ok();
}

Status ByteReader::ReadBytes(size_t n, uint8_t* out) {
  if (n > remaining()) return Truncated("bytes");
  std::memcpy(out, data_ + pos_, n);
  pos_ += n;
  return Status::Ok();
}

Result<int64_t> ByteReader::ReadCount() {
  GL_ASSIGN_OR_RETURN(const uint64_t value, ReadVarint());
  if (value > static_cast<uint64_t>(INT64_MAX)) return Truncated("count range");
  return static_cast<int64_t>(value);
}

uint32_t SealPageFrame(uint32_t page_id, PageType type, uint32_t payload_len,
                       uint8_t* frame, uint32_t page_bytes) {
  GL_CHECK_LE(payload_len, PagePayloadCapacity(page_bytes));
  const uint32_t type_raw = static_cast<uint32_t>(type);
  frame[4] = static_cast<uint8_t>(page_id);
  frame[5] = static_cast<uint8_t>(page_id >> 8);
  frame[6] = static_cast<uint8_t>(page_id >> 16);
  frame[7] = static_cast<uint8_t>(page_id >> 24);
  frame[8] = static_cast<uint8_t>(type_raw);
  frame[9] = static_cast<uint8_t>(type_raw >> 8);
  frame[10] = 0;
  frame[11] = 0;
  frame[12] = static_cast<uint8_t>(payload_len);
  frame[13] = static_cast<uint8_t>(payload_len >> 8);
  frame[14] = static_cast<uint8_t>(payload_len >> 16);
  frame[15] = static_cast<uint8_t>(payload_len >> 24);
  const uint32_t crc = Crc32(frame + 4, page_bytes - 4);
  frame[0] = static_cast<uint8_t>(crc);
  frame[1] = static_cast<uint8_t>(crc >> 8);
  frame[2] = static_cast<uint8_t>(crc >> 16);
  frame[3] = static_cast<uint8_t>(crc >> 24);
  return crc;
}

Result<PageView> VerifyPageFrame(const uint8_t* frame, uint32_t page_bytes,
                                 uint64_t expected_page_id) {
  const auto read32 = [frame](size_t at) {
    return static_cast<uint32_t>(frame[at]) |
           static_cast<uint32_t>(frame[at + 1]) << 8 |
           static_cast<uint32_t>(frame[at + 2]) << 16 |
           static_cast<uint32_t>(frame[at + 3]) << 24;
  };
  if (read32(0) != Crc32(frame + 4, page_bytes - 4)) {
    return Status::DataLoss("page checksum mismatch at page " +
                            std::to_string(expected_page_id));
  }
  if (read32(4) != expected_page_id) {
    return Status::DataLoss("page id mismatch at page " +
                            std::to_string(expected_page_id));
  }
  const uint32_t type_raw = static_cast<uint32_t>(frame[8]) |
                            static_cast<uint32_t>(frame[9]) << 8;
  if (type_raw < static_cast<uint32_t>(PageType::kHeader) ||
      type_raw > static_cast<uint32_t>(PageType::kSeal)) {
    return Status::DataLoss("unknown page type at page " +
                            std::to_string(expected_page_id));
  }
  PageView view;
  view.type = static_cast<PageType>(type_raw);
  view.payload_len = read32(12);
  if (view.payload_len > PagePayloadCapacity(page_bytes)) {
    return Status::DataLoss("page payload overflow at page " +
                            std::to_string(expected_page_id));
  }
  view.payload = frame + kPageHeaderBytes;
  return view;
}

}  // namespace storage
}  // namespace grouplink
