#include "storage/store_format.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace grouplink {
namespace storage {
namespace {

constexpr uint32_t kHeaderFixedBytes = 8 + 4 + 4 + 8 + 4;  // magic..segment count.

Status BadStore(const std::string& what) {
  return Status::DataLoss("corrupt snapshot store: " + what);
}

/// Enum round trip: stored as varint, restored with a range guard so a
/// (checksum-evading) corrupt value can never reach a switch.
template <typename E>
Status DecodeEnum(ByteReader& reader, E* out) {
  GL_ASSIGN_OR_RETURN(const uint64_t raw, reader.ReadVarint());
  if (raw > 15) return BadStore("enum value out of range");
  *out = static_cast<E>(raw);
  return Status::Ok();
}

void PutBitmap(const std::vector<char>& bits, std::vector<uint8_t>& out) {
  const size_t n_bytes = (bits.size() + 7) / 8;
  size_t start = out.size();
  out.resize(start + n_bytes, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != 0) out[start + i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
}

Status ReadBitmap(ByteReader& reader, size_t count, std::vector<char>* out) {
  const size_t n_bytes = (count + 7) / 8;
  std::vector<uint8_t> raw(n_bytes);
  GL_RETURN_IF_ERROR(reader.ReadBytes(n_bytes, raw.data()));
  out->assign(count, 0);
  for (size_t i = 0; i < count; ++i) {
    (*out)[i] = (raw[i / 8] >> (i % 8)) & 1u;
  }
  return Status::Ok();
}

}  // namespace

std::vector<uint8_t> EncodeHeaderPayload(const StoreInfo& info) {
  std::vector<uint8_t> payload;
  payload.insert(payload.end(), kFileMagic, kFileMagic + sizeof(kFileMagic));
  PutFixed32(payload, kFormatVersion);
  PutFixed32(payload, info.page_bytes);
  PutFixed64(payload, info.num_pages);
  PutFixed32(payload, kNumSegments);
  for (const StoreInfo::Segment& segment : info.segments) {
    PutFixed64(payload, segment.first_page);
    PutFixed64(payload, segment.length);
  }
  return payload;
}

std::vector<uint8_t> EncodeSealPayload(const StoreInfo& info, int64_t epoch) {
  std::vector<uint8_t> payload;
  PutFixed64(payload, kSealMagic);
  PutFixed64(payload, info.num_pages);
  PutFixed64(payload, static_cast<uint64_t>(epoch));
  return payload;
}

Result<StoreInfo> ReadStoreInfo(const PageFile& file) {
  // Phase 1 — sniff: the page size lives at a fixed offset in the header
  // page, but the header page is page_bytes long. Read the minimum page
  // prefix every valid store has, pull the claimed page size, and sanity
  // check it against the file size before trusting it. The header page's
  // checksum (verified in phase 2, before any other field is
  // interpreted) still covers these bytes, so corruption here cannot
  // survive to phase 3.
  if (file.size_bytes() < kMinPageBytes) {
    return BadStore("file smaller than one page");
  }
  uint8_t sniff[kPageHeaderBytes + 16];
  GL_RETURN_IF_ERROR(file.ReadAt(0, sizeof(sniff), sniff));
  ByteReader sniff_reader(sniff + kPageHeaderBytes, 16);
  uint8_t magic[8];
  GL_RETURN_IF_ERROR(sniff_reader.ReadBytes(8, magic));
  if (std::memcmp(magic, kFileMagic, 8) != 0) return BadStore("bad magic");
  GL_ASSIGN_OR_RETURN(const uint32_t version, sniff_reader.ReadFixed32());
  if (version != kFormatVersion) {
    return BadStore("unsupported store version " + std::to_string(version) +
                    " (or corrupt header)");
  }
  GL_ASSIGN_OR_RETURN(const uint32_t page_bytes, sniff_reader.ReadFixed32());
  if (page_bytes < kMinPageBytes || page_bytes > kMaxPageBytes ||
      file.size_bytes() % page_bytes != 0) {
    return BadStore("implausible page size");
  }
  const uint64_t file_pages = file.size_bytes() / page_bytes;
  if (file_pages < 2) return BadStore("too few pages");

  // Phase 2 — verify the header page checksum, then parse it fully.
  std::vector<uint8_t> frame(page_bytes);
  GL_RETURN_IF_ERROR(file.ReadAt(0, page_bytes, frame.data()));
  GL_ASSIGN_OR_RETURN(const PageView header, VerifyPageFrame(frame.data(), page_bytes, 0));
  if (header.type != PageType::kHeader) return BadStore("page 0 is not a header");
  if (header.payload_len < kHeaderFixedBytes) return BadStore("header too short");
  StoreInfo info;
  info.page_bytes = page_bytes;
  ByteReader reader(header.payload, header.payload_len);
  GL_RETURN_IF_ERROR(reader.ReadBytes(8, magic));
  GL_ASSIGN_OR_RETURN(const uint32_t version2, reader.ReadFixed32());
  (void)version2;  // Verified in phase 1; re-read to keep offsets aligned.
  GL_ASSIGN_OR_RETURN(const uint32_t page_bytes2, reader.ReadFixed32());
  if (page_bytes2 != page_bytes) return BadStore("header page size mismatch");
  GL_ASSIGN_OR_RETURN(info.num_pages, reader.ReadFixed64());
  if (info.num_pages != file_pages) return BadStore("page count mismatch");
  GL_ASSIGN_OR_RETURN(const uint32_t segment_count, reader.ReadFixed32());
  if (segment_count != kNumSegments) return BadStore("segment count mismatch");
  for (uint32_t s = 0; s < kNumSegments; ++s) {
    GL_ASSIGN_OR_RETURN(info.segments[s].first_page, reader.ReadFixed64());
    GL_ASSIGN_OR_RETURN(info.segments[s].length, reader.ReadFixed64());
  }

  // Phase 3 — directory consistency: segments tile pages [1, n-1).
  uint64_t expect_page = 1;
  for (uint32_t s = 0; s < kNumSegments; ++s) {
    if (info.segments[s].first_page != expect_page) {
      return BadStore("segment directory is not contiguous");
    }
    expect_page += info.PagesOf(static_cast<SegmentId>(s));
  }
  if (expect_page + 1 != info.num_pages) return BadStore("directory/page-count mismatch");

  // Phase 4 — the seal page, written last: its absence or corruption
  // means the persist never completed.
  GL_RETURN_IF_ERROR(
      file.ReadAt((info.num_pages - 1) * page_bytes, page_bytes, frame.data()));
  GL_ASSIGN_OR_RETURN(const PageView seal,
                      VerifyPageFrame(frame.data(), page_bytes, info.num_pages - 1));
  if (seal.type != PageType::kSeal) return BadStore("unsealed store (no seal page)");
  ByteReader seal_reader(seal.payload, seal.payload_len);
  GL_ASSIGN_OR_RETURN(const uint64_t seal_magic, seal_reader.ReadFixed64());
  if (seal_magic != kSealMagic) return BadStore("bad seal sentinel");
  GL_ASSIGN_OR_RETURN(const uint64_t seal_pages, seal_reader.ReadFixed64());
  if (seal_pages != info.num_pages) return BadStore("seal page count mismatch");
  return info;
}

Result<std::vector<uint8_t>> ReadWholeSegment(const PageFile& file,
                                              const StoreInfo& info, SegmentId id) {
  const StoreInfo::Segment& segment = info.segments[id];
  const uint64_t cap = PagePayloadCapacity(info.page_bytes);
  std::vector<uint8_t> bytes;
  bytes.reserve(static_cast<size_t>(segment.length));
  std::vector<uint8_t> frame(info.page_bytes);
  uint64_t remaining = segment.length;
  for (uint64_t p = 0; remaining > 0; ++p) {
    const uint64_t page_id = segment.first_page + p;
    GL_RETURN_IF_ERROR(
        file.ReadAt(page_id * info.page_bytes, info.page_bytes, frame.data()));
    GL_ASSIGN_OR_RETURN(const PageView view,
                        VerifyPageFrame(frame.data(), info.page_bytes, page_id));
    if (view.type != PageType::kSegment) return BadStore("expected segment page");
    const uint64_t expect = std::min<uint64_t>(cap, remaining);
    if (view.payload_len != expect) return BadStore("segment page length mismatch");
    bytes.insert(bytes.end(), view.payload, view.payload + view.payload_len);
    remaining -= expect;
  }
  return bytes;
}

void EncodeMeta(const MetaData& meta, std::vector<uint8_t>& out) {
  const LinkageConfig& config = meta.config;
  PutDouble(out, config.theta);
  PutDouble(out, config.group_threshold);
  PutDouble(out, config.binary_cutoff);
  PutDouble(out, config.candidate_jaccard);
  PutDouble(out, config.join_jaccard);
  PutDouble(out, config.deadline_ms);
  PutVarint(out, static_cast<uint64_t>(config.measure));
  PutVarint(out, static_cast<uint64_t>(config.representation));
  PutVarint(out, static_cast<uint64_t>(config.candidates));
  PutVarint(out, static_cast<uint64_t>(config.blocking));
  PutVarint(out, static_cast<uint64_t>(config.neighborhood_window));
  PutVarint(out, static_cast<uint64_t>(config.minhash_bands));
  PutVarint(out, static_cast<uint64_t>(config.minhash_rows));
  PutVarint(out, static_cast<uint64_t>(config.num_threads));
  PutVarint(out, config.use_filter_refine ? 1 : 0);
  PutVarint(out, config.use_upper_bound_filter ? 1 : 0);
  PutVarint(out, config.use_lower_bound_accept ? 1 : 0);
  PutVarint(out, config.use_edge_join ? 1 : 0);
  PutVarint(out, static_cast<uint64_t>(config.max_candidate_pairs));
  PutVarint(out, static_cast<uint64_t>(config.max_matcher_cost));

  PutVarint(out, static_cast<uint64_t>(meta.epoch));
  PutVarint(out, static_cast<uint64_t>(meta.num_records));
  PutVarint(out, static_cast<uint64_t>(meta.num_groups));
  PutVarint(out, static_cast<uint64_t>(meta.num_alive_groups));
  for (const int32_t g : meta.record_group) {
    PutVarint(out, static_cast<uint64_t>(g));
  }
  PutBitmap(meta.record_removed, out);
  PutBitmap(meta.group_alive, out);
  for (const std::string& label : meta.group_labels) PutString(out, label);
  for (const std::vector<int32_t>& records : meta.group_records) {
    PutDeltaVarints(out, records);
  }
  PutVarint(out, meta.linked_pairs.size());
  for (const auto& [g1, g2] : meta.linked_pairs) {
    PutVarint(out, static_cast<uint64_t>(g1));
    PutVarint(out, static_cast<uint64_t>(g2));
  }
  for (const size_t label : meta.cluster_labels) PutVarint(out, label);
}

Status DecodeMeta(const std::vector<uint8_t>& bytes, MetaData* out) {
  ByteReader reader(bytes.data(), bytes.size());
  LinkageConfig& config = out->config;
  GL_ASSIGN_OR_RETURN(config.theta, reader.ReadDouble());
  GL_ASSIGN_OR_RETURN(config.group_threshold, reader.ReadDouble());
  GL_ASSIGN_OR_RETURN(config.binary_cutoff, reader.ReadDouble());
  GL_ASSIGN_OR_RETURN(config.candidate_jaccard, reader.ReadDouble());
  GL_ASSIGN_OR_RETURN(config.join_jaccard, reader.ReadDouble());
  GL_ASSIGN_OR_RETURN(config.deadline_ms, reader.ReadDouble());
  GL_RETURN_IF_ERROR(DecodeEnum(reader, &config.measure));
  GL_RETURN_IF_ERROR(DecodeEnum(reader, &config.representation));
  GL_RETURN_IF_ERROR(DecodeEnum(reader, &config.candidates));
  GL_RETURN_IF_ERROR(DecodeEnum(reader, &config.blocking));
  GL_ASSIGN_OR_RETURN(int64_t value, reader.ReadCount());
  config.neighborhood_window = static_cast<int32_t>(value);
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.minhash_bands = static_cast<int32_t>(value);
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.minhash_rows = static_cast<int32_t>(value);
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.num_threads = static_cast<int32_t>(value);
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.use_filter_refine = value != 0;
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.use_upper_bound_filter = value != 0;
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.use_lower_bound_accept = value != 0;
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  config.use_edge_join = value != 0;
  GL_ASSIGN_OR_RETURN(config.max_candidate_pairs, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(config.max_matcher_cost, reader.ReadCount());

  GL_ASSIGN_OR_RETURN(out->epoch, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(out->num_records, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(out->num_groups, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
  out->num_alive_groups = static_cast<int32_t>(value);
  // A corrupt count would drive the per-record loops into huge
  // allocations; every entry below is at least one byte.
  if (static_cast<uint64_t>(out->num_records) > bytes.size() ||
      static_cast<uint64_t>(out->num_groups) > bytes.size()) {
    return BadStore("implausible record/group count");
  }
  const size_t n_records = static_cast<size_t>(out->num_records);
  const size_t n_groups = static_cast<size_t>(out->num_groups);
  out->record_group.resize(n_records);
  for (size_t r = 0; r < n_records; ++r) {
    GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
    if (value >= out->num_groups) return BadStore("record_group out of range");
    out->record_group[r] = static_cast<int32_t>(value);
  }
  GL_RETURN_IF_ERROR(ReadBitmap(reader, n_records, &out->record_removed));
  GL_RETURN_IF_ERROR(ReadBitmap(reader, n_groups, &out->group_alive));
  out->group_labels.resize(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    GL_ASSIGN_OR_RETURN(out->group_labels[g], reader.ReadString());
  }
  out->group_records.resize(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    GL_RETURN_IF_ERROR(reader.ReadDeltaVarints(&out->group_records[g]));
  }
  GL_ASSIGN_OR_RETURN(const int64_t n_pairs, reader.ReadCount());
  if (static_cast<uint64_t>(n_pairs) > bytes.size()) {
    return BadStore("implausible pair count");
  }
  out->linked_pairs.resize(static_cast<size_t>(n_pairs));
  for (auto& [g1, g2] : out->linked_pairs) {
    GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
    g1 = static_cast<int32_t>(value);
    GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
    g2 = static_cast<int32_t>(value);
  }
  out->cluster_labels.resize(n_groups);
  for (size_t g = 0; g < n_groups; ++g) {
    GL_ASSIGN_OR_RETURN(value, reader.ReadCount());
    out->cluster_labels[g] = static_cast<size_t>(value);
  }
  if (!reader.AtEnd()) return BadStore("trailing bytes in meta segment");
  return Status::Ok();
}

void EncodeIndexVocab(const Vocabulary& vocab, std::vector<uint8_t>& out) {
  PutVarint(out, static_cast<uint64_t>(vocab.num_documents()));
  PutVarint(out, vocab.size());
  for (size_t id = 0; id < vocab.size(); ++id) {
    PutString(out, vocab.TokenOf(static_cast<int32_t>(id)));
    PutVarint(out,
              static_cast<uint64_t>(vocab.DocumentFrequencyOf(static_cast<int32_t>(id))));
  }
}

Result<Vocabulary> DecodeIndexVocab(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes.data(), bytes.size());
  GL_ASSIGN_OR_RETURN(const int64_t num_documents, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(const int64_t size, reader.ReadCount());
  if (static_cast<uint64_t>(size) > bytes.size()) {
    return BadStore("implausible vocabulary size");
  }
  std::vector<std::string> tokens(static_cast<size_t>(size));
  std::vector<int64_t> dfs(static_cast<size_t>(size));
  for (int64_t id = 0; id < size; ++id) {
    GL_ASSIGN_OR_RETURN(tokens[static_cast<size_t>(id)], reader.ReadString());
    GL_ASSIGN_OR_RETURN(dfs[static_cast<size_t>(id)], reader.ReadCount());
  }
  if (!reader.AtEnd()) return BadStore("trailing bytes in dictionary segment");
  return Vocabulary::Restore(std::move(tokens), std::move(dfs), num_documents);
}

void EncodeEpochVocab(const Vocabulary& epoch_vocab, const Vocabulary& index_vocab,
                      std::vector<uint8_t>& out) {
  PutVarint(out, static_cast<uint64_t>(epoch_vocab.num_documents()));
  PutVarint(out, epoch_vocab.size());
  for (size_t id = 0; id < epoch_vocab.size(); ++id) {
    const int32_t index_id =
        index_vocab.GetId(epoch_vocab.TokenOf(static_cast<int32_t>(id)));
    // Every epoch token came from a live record whose tokens the index
    // absorbed at arrival, so the reference always resolves.
    GL_CHECK_NE(index_id, Vocabulary::kUnknownToken);
    PutVarint(out, static_cast<uint64_t>(index_id));
    PutVarint(out, static_cast<uint64_t>(
                       epoch_vocab.DocumentFrequencyOf(static_cast<int32_t>(id))));
  }
}

Result<Vocabulary> DecodeEpochVocab(const std::vector<uint8_t>& bytes,
                                    const Vocabulary& index_vocab) {
  ByteReader reader(bytes.data(), bytes.size());
  GL_ASSIGN_OR_RETURN(const int64_t num_documents, reader.ReadCount());
  GL_ASSIGN_OR_RETURN(const int64_t size, reader.ReadCount());
  if (static_cast<uint64_t>(size) > bytes.size()) {
    return BadStore("implausible vocabulary size");
  }
  std::vector<std::string> tokens(static_cast<size_t>(size));
  std::vector<int64_t> dfs(static_cast<size_t>(size));
  for (int64_t id = 0; id < size; ++id) {
    GL_ASSIGN_OR_RETURN(const int64_t index_id, reader.ReadCount());
    if (static_cast<uint64_t>(index_id) >= index_vocab.size()) {
      return BadStore("epoch dictionary reference out of range");
    }
    tokens[static_cast<size_t>(id)] =
        index_vocab.TokenOf(static_cast<int32_t>(index_id));
    GL_ASSIGN_OR_RETURN(dfs[static_cast<size_t>(id)], reader.ReadCount());
  }
  if (!reader.AtEnd()) return BadStore("trailing bytes in dictionary segment");
  return Vocabulary::Restore(std::move(tokens), std::move(dfs), num_documents);
}

Status DecodeDirectory(const std::vector<uint8_t>& bytes, uint64_t expected_total,
                       std::vector<uint64_t>* offsets) {
  ByteReader reader(bytes.data(), bytes.size());
  GL_ASSIGN_OR_RETURN(const int64_t count, reader.ReadCount());
  if (static_cast<uint64_t>(count) > bytes.size()) {
    return BadStore("implausible directory size");
  }
  offsets->assign(static_cast<size_t>(count) + 1, 0);
  uint64_t total = 0;
  for (int64_t i = 0; i < count; ++i) {
    GL_ASSIGN_OR_RETURN(const uint64_t length, reader.ReadVarint());
    total += length;
    (*offsets)[static_cast<size_t>(i) + 1] = total;
  }
  if (!reader.AtEnd()) return BadStore("trailing bytes in directory segment");
  if (total != expected_total) return BadStore("directory/segment length mismatch");
  return Status::Ok();
}

}  // namespace storage
}  // namespace grouplink
