#include "storage/snapshot_store.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "storage/page.h"
#include "storage/page_file.h"
#include "storage/store_format.h"

namespace grouplink {
namespace storage {
namespace {

struct StoreMetrics {
  Counter& persists;
  Counter& pages_written;
  Counter& recoveries;

  static StoreMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static StoreMetrics metrics{registry.CounterRef("storage.persists"),
                                registry.CounterRef("storage.pages_written"),
                                registry.CounterRef("storage.recoveries")};
    return metrics;
  }
};

/// Writes one logical byte stream as consecutive segment pages: every
/// page's payload is filled to capacity except possibly the last.
Status WriteSegmentPages(PageWriter& writer, const std::vector<uint8_t>& bytes,
                         uint32_t page_bytes, uint64_t* next_page) {
  const uint64_t cap = PagePayloadCapacity(page_bytes);
  std::vector<uint8_t> frame(page_bytes);
  uint64_t done = 0;
  // A zero-length segment still occupies zero pages — the loop body never
  // runs and the directory records length 0.
  while (done < bytes.size()) {
    const uint32_t take =
        static_cast<uint32_t>(std::min<uint64_t>(cap, bytes.size() - done));
    std::memset(frame.data(), 0, frame.size());
    std::memcpy(frame.data() + kPageHeaderBytes, bytes.data() + done, take);
    SealPageFrame(static_cast<uint32_t>(*next_page), PageType::kSegment, take,
                  frame.data(), page_bytes);
    GL_RETURN_IF_ERROR(writer.Append(frame.data(), frame.size()));
    StoreMetrics::Get().pages_written.Increment();
    ++*next_page;
    done += take;
  }
  return Status::Ok();
}

/// Builds one whole page (header or seal) from its payload and appends it.
Status WriteSinglePage(PageWriter& writer, uint64_t page_id, PageType type,
                       const std::vector<uint8_t>& payload, uint32_t page_bytes) {
  GL_CHECK_LE(payload.size(), PagePayloadCapacity(page_bytes))
      << "page payload overflow";
  std::vector<uint8_t> frame(page_bytes, 0);
  std::memcpy(frame.data() + kPageHeaderBytes, payload.data(), payload.size());
  SealPageFrame(static_cast<uint32_t>(page_id), type,
                static_cast<uint32_t>(payload.size()), frame.data(), page_bytes);
  GL_RETURN_IF_ERROR(writer.Append(frame.data(), frame.size()));
  StoreMetrics::Get().pages_written.Increment();
  return Status::Ok();
}

/// Encodes all nine segment byte streams from the snapshot's frozen parts.
std::array<std::vector<uint8_t>, kNumSegments> EncodeSegments(
    const CorpusSnapshot& snapshot) {
  std::array<std::vector<uint8_t>, kNumSegments> segments;
  const InvertedIndex& index = snapshot.token_index();
  const size_t n_records = static_cast<size_t>(snapshot.num_records());

  MetaData meta;
  meta.config = snapshot.engine_config();
  meta.epoch = snapshot.epoch();
  meta.num_records = static_cast<int64_t>(n_records);
  meta.num_groups = snapshot.num_groups();
  meta.num_alive_groups = snapshot.num_alive_groups();
  const std::vector<int32_t>& record_group = snapshot.record_group();
  meta.record_group = record_group;
  meta.record_removed.resize(n_records);
  for (size_t r = 0; r < n_records; ++r) {
    meta.record_removed[r] = index.IsRemoved(static_cast<int32_t>(r)) ? 1 : 0;
  }
  meta.group_alive = snapshot.group_alive();
  meta.group_labels = snapshot.group_labels();
  meta.group_records = snapshot.group_records();
  meta.linked_pairs = snapshot.linked_pairs();
  meta.cluster_labels = snapshot.cluster_labels();
  EncodeMeta(meta, segments[kMeta]);

  EncodeIndexVocab(snapshot.index_vocab(), segments[kDictIndex]);
  EncodeEpochVocab(snapshot.epoch_vocab(), snapshot.index_vocab(),
                   segments[kDictEpoch]);

  // Postings + directory: one delta-compressed list per index token id.
  // The lists include tombstoned documents exactly as the live index
  // holds them; StoredCorpus filters through the tombstone bitmap the
  // same way DocumentsSharingToken does.
  const size_t n_tokens = snapshot.index_vocab().size();
  std::vector<int32_t> dir_lengths;
  dir_lengths.reserve(n_tokens);
  for (size_t t = 0; t < n_tokens; ++t) {
    const size_t before = segments[kPostings].size();
    PutDeltaVarints(segments[kPostings], index.Postings(static_cast<int32_t>(t)));
    dir_lengths.push_back(static_cast<int32_t>(segments[kPostings].size() - before));
  }
  PutVarint(segments[kPostingsDir], dir_lengths.size());
  for (const int32_t length : dir_lengths) {
    PutVarint(segments[kPostingsDir], static_cast<uint64_t>(length));
  }

  // TF-IDF vectors + directory: delta-varint ids, weights as raw IEEE-754
  // bits — the round trip is bit-identical, which the differential suite
  // turns into link-set identity.
  dir_lengths.clear();
  dir_lengths.reserve(n_records);
  for (size_t r = 0; r < n_records; ++r) {
    const SparseVector& vector = snapshot.record_vectors()[r];
    const size_t before = segments[kVectors].size();
    PutDeltaVarints(segments[kVectors], vector.ids);
    for (const double w : vector.weights) PutDouble(segments[kVectors], w);
    dir_lengths.push_back(static_cast<int32_t>(segments[kVectors].size() - before));
  }
  PutVarint(segments[kVectorsDir], dir_lengths.size());
  for (const int32_t length : dir_lengths) {
    PutVarint(segments[kVectorsDir], static_cast<uint64_t>(length));
  }

  // Per-record index token sets, exactly as AddDocument received them
  // (post-compaction tombstones have empty sets; replaying AddDocument
  // then RemoveDocument reproduces the index bit for bit either way).
  PutVarint(segments[kDocs], n_records);
  for (size_t r = 0; r < n_records; ++r) {
    PutDeltaVarints(segments[kDocs], index.DocumentTokens(static_cast<int32_t>(r)));
  }

  // Raw token occurrences (order and repeats preserved — these are not
  // sorted sets, so plain varints rather than deltas).
  PutVarint(segments[kRawTokens], n_records);
  for (size_t r = 0; r < n_records; ++r) {
    const std::vector<int32_t>& ids = snapshot.record_token_ids()[r];
    PutVarint(segments[kRawTokens], ids.size());
    for (const int32_t id : ids) {
      PutVarint(segments[kRawTokens], static_cast<uint64_t>(id));
    }
  }
  return segments;
}

}  // namespace

Status SnapshotStore::Persist(const CorpusSnapshot& snapshot,
                              const std::string& path,
                              const StorageOptions& options) {
  if (options.page_bytes < kMinPageBytes || options.page_bytes > kMaxPageBytes) {
    return Status::InvalidArgument(
        "page_bytes must lie in [" + std::to_string(kMinPageBytes) + ", " +
        std::to_string(kMaxPageBytes) + "], got " +
        std::to_string(options.page_bytes));
  }
  GL_CHECK(snapshot.CheckConsistency()) << "Persist requires a sealed snapshot";

  const std::array<std::vector<uint8_t>, kNumSegments> segments =
      EncodeSegments(snapshot);

  StoreInfo info;
  info.page_bytes = options.page_bytes;
  uint64_t next_page = 1;  // Page 0 is the header.
  for (uint32_t s = 0; s < kNumSegments; ++s) {
    info.segments[s].first_page = next_page;
    info.segments[s].length = segments[s].size();
    next_page += info.PagesOf(static_cast<SegmentId>(s));
  }
  info.num_pages = next_page + 1;  // + seal page.

  const std::string tmp_path = path + ".tmp";
  GL_ASSIGN_OR_RETURN(const std::unique_ptr<PageWriter> writer,
                      PageWriter::Create(tmp_path));
  // On any failure below the tmp file is left exactly as a crash at that
  // instant would leave it; the published store is untouched.
  GL_RETURN_IF_ERROR(WriteSinglePage(*writer, 0, PageType::kHeader,
                                     EncodeHeaderPayload(info), info.page_bytes));
  uint64_t page = 1;
  for (uint32_t s = 0; s < kNumSegments; ++s) {
    GL_RETURN_IF_ERROR(
        WriteSegmentPages(*writer, segments[s], info.page_bytes, &page));
  }
  GL_CHECK_EQ(page, info.num_pages - 1) << "segment layout drifted";
  GL_RETURN_IF_ERROR(WriteSinglePage(*writer, info.num_pages - 1, PageType::kSeal,
                                     EncodeSealPayload(info, snapshot.epoch()),
                                     info.page_bytes));
  GL_RETURN_IF_ERROR(writer->Sync());
  GL_RETURN_IF_ERROR(writer->Close());
  GL_RETURN_IF_ERROR(AtomicReplace(tmp_path, path));
  StoreMetrics::Get().persists.Increment();
  return Status::Ok();
}

Result<std::shared_ptr<const CorpusSnapshot>> SnapshotStore::Load(
    const std::string& path) {
  GL_ASSIGN_OR_RETURN(const std::unique_ptr<PageFile> file, PageFile::Open(path));
  GL_ASSIGN_OR_RETURN(const StoreInfo info, ReadStoreInfo(*file));

  // ReadWholeSegment checksum-verifies every page it touches; together
  // the nine reads cover the whole file, so any flipped bit anywhere
  // surfaces as DataLoss here, deterministically.
  std::array<std::vector<uint8_t>, kNumSegments> segments;
  for (uint32_t s = 0; s < kNumSegments; ++s) {
    GL_ASSIGN_OR_RETURN(segments[s],
                        ReadWholeSegment(*file, info, static_cast<SegmentId>(s)));
  }

  MetaData meta;
  GL_RETURN_IF_ERROR(DecodeMeta(segments[kMeta], &meta));
  CorpusSnapshot::Parts parts;
  parts.config = meta.config;
  GL_RETURN_IF_ERROR(parts.config.Validate());
  parts.epoch = meta.epoch;
  GL_ASSIGN_OR_RETURN(parts.index_vocab, DecodeIndexVocab(segments[kDictIndex]));
  GL_ASSIGN_OR_RETURN(parts.epoch_vocab,
                      DecodeEpochVocab(segments[kDictEpoch], parts.index_vocab));
  const size_t n_records = static_cast<size_t>(meta.num_records);
  const size_t n_tokens = parts.index_vocab.size();

  // Structural cross-checks of the directories against their segments
  // (StoredCorpus trusts these offsets for random access).
  std::vector<uint64_t> offsets;
  GL_RETURN_IF_ERROR(DecodeDirectory(segments[kPostingsDir],
                                     segments[kPostings].size(), &offsets));
  if (offsets.size() != n_tokens + 1) {
    return Status::DataLoss("postings directory entry count mismatch");
  }
  GL_RETURN_IF_ERROR(DecodeDirectory(segments[kVectorsDir],
                                     segments[kVectors].size(), &offsets));
  if (offsets.size() != n_records + 1) {
    return Status::DataLoss("vectors directory entry count mismatch");
  }

  // TF-IDF vectors.
  {
    ByteReader reader(segments[kVectors].data(), segments[kVectors].size());
    parts.record_vectors.resize(n_records);
    for (size_t r = 0; r < n_records; ++r) {
      SparseVector& vector = parts.record_vectors[r];
      GL_RETURN_IF_ERROR(reader.ReadDeltaVarints(&vector.ids));
      vector.weights.resize(vector.ids.size());
      for (double& w : vector.weights) {
        GL_ASSIGN_OR_RETURN(w, reader.ReadDouble());
      }
      for (const int32_t id : vector.ids) {
        if (static_cast<size_t>(id) >= parts.epoch_vocab.size()) {
          return Status::DataLoss("vector token id out of vocabulary range");
        }
      }
    }
    if (!reader.AtEnd()) {
      return Status::DataLoss("trailing bytes in vectors segment");
    }
  }

  // Inverted index, rebuilt through the exact mutation sequence of the
  // original: AddDocument in id order, then the tombstones. The postings
  // segment is not consulted here — the rebuild reproduces it (the
  // differential suite holds the paged reader, which does read it, to
  // the same answers).
  {
    ByteReader reader(segments[kDocs].data(), segments[kDocs].size());
    GL_ASSIGN_OR_RETURN(const int64_t count, reader.ReadCount());
    if (static_cast<size_t>(count) != n_records) {
      return Status::DataLoss("docs segment record count mismatch");
    }
    std::vector<int32_t> token_ids;
    for (size_t r = 0; r < n_records; ++r) {
      GL_RETURN_IF_ERROR(reader.ReadDeltaVarints(&token_ids));
      for (const int32_t id : token_ids) {
        if (static_cast<size_t>(id) >= n_tokens) {
          return Status::DataLoss("document token id out of vocabulary range");
        }
      }
      parts.token_index.AddDocument(token_ids);
    }
    if (!reader.AtEnd()) return Status::DataLoss("trailing bytes in docs segment");
    if (meta.record_removed.size() != n_records) {
      return Status::DataLoss("tombstone bitmap size mismatch");
    }
    for (size_t r = 0; r < n_records; ++r) {
      if (meta.record_removed[r] != 0) {
        parts.token_index.RemoveDocument(static_cast<int32_t>(r));
      }
    }
  }

  // Raw token occurrences.
  {
    ByteReader reader(segments[kRawTokens].data(), segments[kRawTokens].size());
    GL_ASSIGN_OR_RETURN(const int64_t count, reader.ReadCount());
    if (static_cast<size_t>(count) != n_records) {
      return Status::DataLoss("raw-tokens segment record count mismatch");
    }
    parts.record_token_ids.resize(n_records);
    for (size_t r = 0; r < n_records; ++r) {
      GL_ASSIGN_OR_RETURN(const int64_t n_ids, reader.ReadCount());
      if (static_cast<uint64_t>(n_ids) > reader.remaining()) {
        return Status::DataLoss("implausible raw token count");
      }
      std::vector<int32_t>& ids = parts.record_token_ids[r];
      ids.resize(static_cast<size_t>(n_ids));
      for (int32_t& id : ids) {
        GL_ASSIGN_OR_RETURN(const int64_t raw, reader.ReadCount());
        if (static_cast<size_t>(raw) >= n_tokens) {
          return Status::DataLoss("raw token id out of vocabulary range");
        }
        id = static_cast<int32_t>(raw);
      }
    }
    if (!reader.AtEnd()) {
      return Status::DataLoss("trailing bytes in raw-tokens segment");
    }
  }

  // Group structure: every referenced record must exist (FromParts'
  // CheckConsistency covers the remaining invariants).
  for (const std::vector<int32_t>& records : meta.group_records) {
    for (const int32_t r : records) {
      if (static_cast<size_t>(r) >= n_records) {
        return Status::DataLoss("group references a record out of range");
      }
    }
  }
  parts.record_group = std::move(meta.record_group);
  parts.group_records = std::move(meta.group_records);
  parts.group_labels = std::move(meta.group_labels);
  parts.group_alive = std::move(meta.group_alive);
  parts.num_alive_groups = meta.num_alive_groups;
  parts.linked_pairs = std::move(meta.linked_pairs);
  parts.cluster_labels = std::move(meta.cluster_labels);

  GL_ASSIGN_OR_RETURN(std::shared_ptr<const CorpusSnapshot> snapshot,
                      CorpusSnapshot::FromParts(std::move(parts)));
  StoreMetrics::Get().recoveries.Increment();
  return snapshot;
}

}  // namespace storage
}  // namespace grouplink
