#include "storage/buffer_manager.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/metrics.h"

namespace grouplink {
namespace storage {
namespace {

struct StorageMetrics {
  Counter& pages_read;
  Counter& buffer_hits;
  Counter& evictions;

  static StorageMetrics& Get() {
    auto& registry = MetricsRegistry::Default();
    static StorageMetrics metrics{registry.CounterRef("storage.pages_read"),
                                  registry.CounterRef("storage.buffer_hits"),
                                  registry.CounterRef("storage.evictions")};
    return metrics;
  }
};

}  // namespace

PageHandle& PageHandle::operator=(PageHandle&& other) noexcept {
  if (this != &other) {
    Release();
    manager_ = other.manager_;
    frame_ = other.frame_;
    payload_ = other.payload_;
    payload_len_ = other.payload_len_;
    type_ = other.type_;
    other.manager_ = nullptr;
    other.payload_ = nullptr;
  }
  return *this;
}

void PageHandle::Release() {
  if (manager_ != nullptr) {
    manager_->Unpin(frame_);
    manager_ = nullptr;
    payload_ = nullptr;
  }
}

BufferManager::BufferManager(std::shared_ptr<const PageFile> file,
                             uint32_t page_bytes, uint64_t num_pages,
                             size_t pool_pages)
    : file_(std::move(file)), page_bytes_(page_bytes), num_pages_(num_pages),
      pool_pages_(pool_pages) {
  GL_CHECK_GE(pool_pages, 1u);
  MutexLock lock(&mu_);
  frames_.resize(pool_pages);
  page_map_.reserve(pool_pages);
}

size_t BufferManager::FindVictimLocked() {
  // Clock sweep: first pass clears second-chance bits, so after at most
  // two revolutions every unpinned frame has been offered. An invalid
  // (never-loaded) frame is always a free victim.
  const size_t n = pool_pages_;
  for (size_t step = 0; step < 2 * n; ++step) {
    Frame& frame = frames_[clock_hand_];
    const size_t index = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % n;
    if (frame.pins > 0) continue;
    if (frame.valid && frame.referenced) {
      frame.referenced = false;
      continue;
    }
    return index;
  }
  return n;
}

Result<PageHandle> BufferManager::Pin(uint64_t page_id) {
  if (page_id >= num_pages_) {
    return Status::OutOfRange("page id " + std::to_string(page_id) +
                              " out of range (store has " +
                              std::to_string(num_pages_) + " pages)");
  }
  MutexLock lock(&mu_);
  const auto it = page_map_.find(page_id);
  if (it != page_map_.end()) {
    Frame& frame = frames_[it->second];
    ++frame.pins;
    frame.referenced = true;
    ++stats_.hits;
    StorageMetrics::Get().buffer_hits.Increment();
    return PageHandle(this, it->second, frame.data.data() + kPageHeaderBytes,
                      frame.payload_len, frame.type);
  }

  const size_t victim = FindVictimLocked();
  if (victim == pool_pages_) {
    return Status::FailedPrecondition(
        "buffer pool exhausted: all " + std::to_string(pool_pages_) +
        " frames pinned");
  }
  Frame& frame = frames_[victim];
  if (frame.valid) {
    page_map_.erase(frame.page_id);
    frame.valid = false;
    ++stats_.evictions;
    StorageMetrics::Get().evictions.Increment();
  }

  // Miss path: disk read + checksum verification under the pool lock
  // (v1 simplification, see class comment).
  frame.data.resize(page_bytes_);
  const Status read_status = file_->ReadAt(
      page_id * static_cast<uint64_t>(page_bytes_), page_bytes_, frame.data.data());
  if (!read_status.ok()) return read_status;
  Result<PageView> view = VerifyPageFrame(frame.data.data(), page_bytes_, page_id);
  if (!view.ok()) return view.status();

  ++stats_.misses;
  StorageMetrics::Get().pages_read.Increment();
  frame.page_id = page_id;
  frame.pins = 1;
  frame.valid = true;
  frame.referenced = true;
  frame.type = view->type;
  frame.payload_len = view->payload_len;
  page_map_.emplace(page_id, victim);
  return PageHandle(this, victim, frame.data.data() + kPageHeaderBytes,
                    frame.payload_len, frame.type);
}

void BufferManager::Unpin(size_t frame_index) {
  MutexLock lock(&mu_);
  Frame& frame = frames_[frame_index];
  GL_DCHECK_GT(frame.pins, 0);
  --frame.pins;
}

BufferStats BufferManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

SegmentReader::SegmentReader(BufferManager* buffer, uint64_t first_page,
                             uint64_t length)
    : buffer_(buffer), first_page_(first_page), length_(length) {}

Status SegmentReader::ReadAt(uint64_t offset, size_t n, uint8_t* out) const {
  if (n == 0) return Status::Ok();
  GL_CHECK(buffer_ != nullptr);
  if (offset + n > length_ || offset + n < offset) {
    return Status::DataLoss("segment read past end (offset " +
                            std::to_string(offset) + " + " + std::to_string(n) +
                            " > " + std::to_string(length_) + ")");
  }
  const uint64_t cap = PagePayloadCapacity(buffer_->page_bytes());
  size_t done = 0;
  while (done < n) {
    const uint64_t at = offset + done;
    const uint64_t page = first_page_ + at / cap;
    const uint64_t within = at % cap;
    GL_ASSIGN_OR_RETURN(const PageHandle handle, buffer_->Pin(page));
    if (handle.type() != PageType::kSegment) {
      return Status::DataLoss("segment page has wrong type at page " +
                              std::to_string(page));
    }
    if (within >= handle.payload_len()) {
      return Status::DataLoss("segment page underflow at page " +
                              std::to_string(page));
    }
    const size_t take = static_cast<size_t>(
        std::min<uint64_t>(handle.payload_len() - within, n - done));
    std::memcpy(out + done, handle.payload() + within, take);
    done += take;
    // The handle unpins here: at most one page is pinned per reader.
  }
  return Status::Ok();
}

Result<std::vector<uint8_t>> SegmentReader::ReadAt(uint64_t offset, size_t n) const {
  std::vector<uint8_t> out(n);
  GL_RETURN_IF_ERROR(ReadAt(offset, n, out.data()));
  return out;
}

}  // namespace storage
}  // namespace grouplink
