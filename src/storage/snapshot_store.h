#ifndef GROUPLINK_STORAGE_SNAPSHOT_STORE_H_
#define GROUPLINK_STORAGE_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "core/snapshot.h"
#include "storage/page.h"

namespace grouplink {
namespace storage {

/// Knobs of the persistent tier.
struct StorageOptions {
  /// On-disk page size. Must lie in [kMinPageBytes, kMaxPageBytes];
  /// smaller pages mean finer-grained buffer budgets (and more checksum
  /// overhead), larger pages amortize I/O. 4 KiB matches the common
  /// filesystem block.
  uint32_t page_bytes = 4096;
  /// Buffer-pool frame budget of a StoredCorpus opened over the store.
  size_t buffer_pool_pages = 64;
};

/// Serializes sealed CorpusSnapshots into paged, checksummed store files
/// and recovers them (DESIGN.md §12).
///
/// Durability protocol — write-new-then-rename:
///   1. The whole store is built at `path + ".tmp"`: header page,
///      segment pages, then the seal page *last*.
///   2. fsync of the tmp file, then rename(2) onto `path`, then fsync of
///      the directory. Readers only ever observe the complete old store
///      or the complete new store.
///   3. Recovery trusts nothing: the header, the seal, and every page
///      checksum are verified before any byte is interpreted, and the
///      rebuilt snapshot must pass CheckConsistency. A crash at any
///      instant therefore yields either the previous consistent store or
///      a clean error — never a silently different link set
///      (tests/storage_recovery_test.cc sweeps every injection site).
class SnapshotStore {
 public:
  /// Writes `snapshot` to `path` under the protocol above. On failure the
  /// published store (if any) is untouched; a partial `path + ".tmp"` may
  /// remain, exactly as a crash would leave it — the next Persist
  /// truncates it, and Load never looks at it.
  [[nodiscard]] static Status Persist(const CorpusSnapshot& snapshot,
                                      const std::string& path,
                                      const StorageOptions& options = {});

  /// Recovers the snapshot stored at `path`. Checksum-verifies every page
  /// of the file (recovery reads it all anyway, and a full scan turns any
  /// corruption into a deterministic Status::DataLoss). The inverted
  /// index is rebuilt from the persisted per-record token sets through
  /// the exact AddDocument/RemoveDocument sequence of the original, so
  /// the recovered snapshot answers every query bit-identically.
  /// Errors: NotFound (no store), DataLoss (corruption or a store that
  /// decodes into an inconsistent epoch), IoError.
  [[nodiscard]] static Result<std::shared_ptr<const CorpusSnapshot>> Load(
      const std::string& path);
};

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_SNAPSHOT_STORE_H_
