#ifndef GROUPLINK_STORAGE_PAGE_H_
#define GROUPLINK_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"

namespace grouplink {
namespace storage {

/// On-disk page format of the persistent index tier (DESIGN.md §12).
///
/// A store file is an array of fixed-size pages. Every page carries a
/// CRC32 over everything after the checksum field, so a torn write, a
/// bit flip, or a stale sector is detected on first read and surfaces
/// Status::DataLoss — never a silently different link set. Layout:
///
///   offset  0  u32  crc32 of bytes [4, page_bytes)
///   offset  4  u32  page id (== file offset / page_bytes)
///   offset  8  u16  PageType
///   offset 10  u16  reserved (0)
///   offset 12  u32  payload length (<= page_bytes - 16)
///   offset 16  payload, zero-padded to page_bytes
///
/// Zero padding is covered by the checksum, so the frame a reader
/// verifies is bit-for-bit the frame the writer sealed.

/// Fixed byte overhead of every page before the payload.
inline constexpr uint32_t kPageHeaderBytes = 16;
/// Allowed page sizes. The minimum also bounds the "sniff" read that
/// discovers a store's page size before its header page can be verified.
inline constexpr uint32_t kMinPageBytes = 256;
inline constexpr uint32_t kMaxPageBytes = 1u << 20;
/// Store format version; bumped on any layout change.
inline constexpr uint32_t kFormatVersion = 1;
/// First 8 payload bytes of the header page.
inline constexpr char kFileMagic[8] = {'G', 'L', 'S', 'N', 'A', 'P', '0', '1'};
/// Seal sentinel, written as the very last page of a persist. A store
/// without a valid seal page was never completely written and is
/// rejected as a unit — the write-new-then-rename protocol's tail.
inline constexpr uint64_t kSealMagic = 0x5ea1ed5ea1ed5eaULL;

enum class PageType : uint16_t {
  kHeader = 1,
  kSegment = 2,
  kSeal = 3,
};

/// Payload bytes available per page.
inline constexpr uint32_t PagePayloadCapacity(uint32_t page_bytes) {
  return page_bytes - kPageHeaderBytes;
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`. `seed` chains
/// incremental computation: Crc32(b, Crc32(a)) == Crc32(a+b).
[[nodiscard]] uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

// --- Append-only encoders over a growable byte buffer. All integers in
// --- the store are LEB128 varints (every serialized quantity is
// --- non-negative) or fixed-width little-endian; doubles are their raw
// --- IEEE-754 bit pattern, so decoded values are bit-identical.

void PutVarint(std::vector<uint8_t>& out, uint64_t value);
void PutFixed32(std::vector<uint8_t>& out, uint32_t value);
void PutFixed64(std::vector<uint8_t>& out, uint64_t value);
void PutDouble(std::vector<uint8_t>& out, double value);
/// Varint length + raw bytes.
void PutString(std::vector<uint8_t>& out, const std::string& value);
/// Varint count, then the first value and successive gaps as varints.
/// Requires `sorted` ascending with non-negative entries (GL_DCHECK).
void PutDeltaVarints(std::vector<uint8_t>& out, const std::vector<int32_t>& sorted);

/// Bounds-checked decoder over a byte range. Every read past the end or
/// malformed varint returns Status::DataLoss — after a page passed its
/// checksum, a decode failure means the store was written by a buggy or
/// incompatible encoder, which is the same "bytes are not trustworthy"
/// condition as corruption.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] Result<uint64_t> ReadVarint();
  [[nodiscard]] Result<uint32_t> ReadFixed32();
  [[nodiscard]] Result<uint64_t> ReadFixed64();
  [[nodiscard]] Result<double> ReadDouble();
  [[nodiscard]] Result<std::string> ReadString();
  /// Inverse of PutDeltaVarints; validates monotonicity and the int32
  /// range so a decoded list is always a valid id list.
  [[nodiscard]] Status ReadDeltaVarints(std::vector<int32_t>* out);
  [[nodiscard]] Status ReadBytes(size_t n, uint8_t* out);
  /// Varint that must fit in a non-negative int64 (all our counts/ids).
  [[nodiscard]] Result<int64_t> ReadCount();

  [[nodiscard]] size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Writes the page header into `frame` (page_bytes long, payload already
/// placed at offset kPageHeaderBytes and the tail zero-padded by the
/// caller) and seals it with the checksum. Returns the stored crc.
uint32_t SealPageFrame(uint32_t page_id, PageType type, uint32_t payload_len,
                       uint8_t* frame, uint32_t page_bytes);

/// A verified page: type and payload view into the caller's frame.
struct PageView {
  PageType type = PageType::kSegment;
  const uint8_t* payload = nullptr;
  uint32_t payload_len = 0;
};

/// Verifies checksum, page id, and payload bounds of a raw frame.
/// Returns DataLoss on any mismatch.
[[nodiscard]] Result<PageView> VerifyPageFrame(const uint8_t* frame,
                                               uint32_t page_bytes,
                                               uint64_t expected_page_id);

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_PAGE_H_
