#ifndef GROUPLINK_STORAGE_PAGE_FILE_H_
#define GROUPLINK_STORAGE_PAGE_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace grouplink {
namespace storage {

/// Positional-read handle on an immutable store file. All raw file I/O of
/// the storage tier lives in this translation unit (enforced by the
/// raw-file-io lint rule); everything above it speaks pages and segments.
///
/// Thread safety: ReadAt uses pread (no shared cursor), so any number of
/// threads may read concurrently. The file is opened once and never
/// mutated — stores are immutable after the rename that publishes them.
class PageFile {
 public:
  [[nodiscard]] static Result<std::unique_ptr<PageFile>> Open(const std::string& path);

  ~PageFile();
  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;

  /// Reads exactly `n` bytes at `offset`; a short read (EOF inside the
  /// range) is DataLoss — a store never shrinks, so missing bytes mean
  /// truncation.
  [[nodiscard]] Status ReadAt(uint64_t offset, size_t n, uint8_t* out) const;

  [[nodiscard]] uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  PageFile(int fd, uint64_t size_bytes, std::string path)
      : fd_(fd), size_bytes_(size_bytes), path_(std::move(path)) {}

  int fd_;
  uint64_t size_bytes_;
  std::string path_;
};

/// Append-only writer used by SnapshotStore::Persist to build the new
/// store at a temporary path. Carries the two crash-injection points of
/// the recovery protocol: faults::kTornWrite (a page write persists only
/// a prefix, then the write reports failure) and faults::kFailFsync
/// (durability is never reached). Both leave the file exactly as a crash
/// at that instant would — the recovery sweep in
/// tests/storage_recovery_test.cc drives every one of these sites.
class PageWriter {
 public:
  /// Creates (or truncates) `path` for writing.
  [[nodiscard]] static Result<std::unique_ptr<PageWriter>> Create(const std::string& path);

  ~PageWriter();
  PageWriter(const PageWriter&) = delete;
  PageWriter& operator=(const PageWriter&) = delete;

  /// Appends one page frame. One kTornWrite evaluation per call.
  [[nodiscard]] Status Append(const uint8_t* frame, size_t n);

  /// fsync. One kFailFsync evaluation per call.
  [[nodiscard]] Status Sync();

  /// Closes the descriptor; further writes are a programmer error.
  [[nodiscard]] Status Close();

  [[nodiscard]] uint64_t bytes_written() const { return bytes_written_; }

 private:
  PageWriter(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  int fd_;
  std::string path_;
  uint64_t bytes_written_ = 0;
};

/// Publishes `tmp_path` as `final_path`: rename(2), then fsync of the
/// containing directory so the rename itself is durable. Readers see
/// either the complete old file or the complete new file, never a mix —
/// the atomicity half of the recovery protocol (the seal page is the
/// completeness half). One kFailFsync evaluation for the directory sync.
[[nodiscard]] Status AtomicReplace(const std::string& tmp_path,
                                   const std::string& final_path);

/// Unlinks `path`; missing files are not an error.
[[nodiscard]] Status RemoveFile(const std::string& path);

/// True if `path` exists (any file type).
[[nodiscard]] bool FileExists(const std::string& path);

}  // namespace storage
}  // namespace grouplink

#endif  // GROUPLINK_STORAGE_PAGE_FILE_H_
